"""Trace-driven consistency invariant checker.

Replays a trace (live events, or a JSONL file written by
:class:`repro.obs.sinks.JsonlSink`) and asserts the paper's per-level
consistency contracts (Section 3, eqs 3.2.1–3.2.3) against what each
node *provably knew*:

**strong** (eq 3.2.1)
    A validated strong read at node ``n`` must never return a version
    older than the newest invalidation *delivered to* ``n``: once an
    ``invalidation_received`` for version ``v`` landed at ``n`` more than
    ``slack`` seconds before a serve, serving ``v' < v`` is a violation.
    The knowledge-relative formulation is deliberate — an update the
    network has not yet told the node about cannot be held against it,
    which is exactly the paper's model where strong consistency is
    enforced *through* the invalidation/poll machinery rather than by a
    global oracle.

**delta** (eq 3.2.2)
    A validated Δ read may lag, but not beyond Δ: if the node learned of
    a newer version more than ``delta + slack`` seconds before the
    serve, the Δ contract is broken.  When the online controller actuates
    Δ mid-run (``controller_actuated`` events with ``knob == "ttp"``),
    the contract is re-evaluated at each actuation boundary: knowledge
    learned while an *older, longer* window could still legitimately be
    open keeps the old bound until those windows drain (a window opened
    just before the actuation at bound ``δ_old`` may serve until
    ``actuation_time + δ_old``), while a *raised* Δ takes effect
    immediately.  A controller that only ever lowers Δ therefore can
    never retroactively create violations.

**weak** (eq 3.2.3)
    A weak read returns "some previous correct value"; per (node, item)
    the versions served from the node's *own* copy must be monotone
    non-decreasing (a local copy never downgrades).

Two contracts apply to **every** read regardless of level:

* **validity** — a served version must exist: it can never exceed the
  ground-truth current version (fed by ``source_update`` events);
* **time order** — event timestamps must be non-decreasing (a malformed
  or spliced trace fails fast instead of producing nonsense verdicts).

Reads flagged ``fallback`` (push give-up, pull poll exhaustion, RPCC
forced-stale, offline self-serves) are *exempt* from the strong/Δ
contracts — the protocols deliberately serve them unvalidated and count
them — but still face the weak/validity checks.  ``slack`` (default 1 s)
absorbs in-flight answers: an acknowledgement already travelling when a
newer invalidation lands at the poller is not a protocol violation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple, Union

from repro.obs.events import (
    ControllerActuated,
    FaultNodeCrashed,
    InvalidationReceived,
    ReadServed,
    SourceUpdate,
    TraceEvent,
    event_from_dict,
)

__all__ = ["Violation", "CheckReport", "InvariantChecker", "check_events"]

#: Tolerance for event times that json round-tripping might perturb.
_TIME_EPSILON = 1e-9


@dataclass
class Violation:
    """One broken invariant, anchored to the read (or event) that broke it."""

    invariant: str  # "strong" | "delta" | "weak-monotone" | "validity" | "time-order"
    time: float
    node: int
    item: int
    served_version: int
    detail: str

    def format(self) -> str:
        """One human-readable line."""
        return (
            f"[{self.invariant}] t={self.time:.3f} node={self.node} "
            f"item={self.item} served=v{self.served_version}: {self.detail}"
        )


@dataclass
class CheckReport:
    """Outcome of replaying one trace through the checker."""

    events: int = 0
    reads_checked: int = 0
    fallback_reads: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when every invariant held."""
        return not self.violations

    def by_invariant(self) -> Dict[str, int]:
        """Violation counts keyed by invariant name."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts

    def format(self, max_violations: int = 20) -> str:
        """Multi-line summary suitable for CLI output."""
        lines = [
            f"trace events: {self.events}",
            f"reads checked: {self.reads_checked} "
            f"({self.fallback_reads} fallback-exempt)",
        ]
        if self.ok:
            lines.append("invariants: OK — no violations")
            return "\n".join(lines)
        lines.append(f"invariants: FAILED — {len(self.violations)} violation(s)")
        for name, count in sorted(self.by_invariant().items()):
            lines.append(f"  {name}: {count}")
        for violation in self.violations[:max_violations]:
            lines.append("  " + violation.format())
        if len(self.violations) > max_violations:
            lines.append(f"  ... {len(self.violations) - max_violations} more")
        return "\n".join(lines)


class InvariantChecker:
    """Streaming checker: feed events in order, then read the report.

    Parameters
    ----------
    delta:
        The Δ bound in seconds (for RPCC runs this is TTP, Section 4.4).
    slack:
        Grace window for answers already in flight when newer knowledge
        arrives; see the module docstring.
    """

    def __init__(self, delta: float = 240.0, slack: float = 1.0) -> None:
        self.delta = float(delta)
        self.slack = float(slack)
        self.report = CheckReport()
        # item -> ground-truth current version (from source_update events)
        self._current: Dict[int, int] = {}
        # (node, item) -> parallel (versions, delivery times), both strictly
        # increasing: the node's delivered-invalidation knowledge.
        self._known: Dict[Tuple[int, int], Tuple[List[int], List[float]]] = {}
        # (node, item) -> last version served from the node's own copy
        self._last_local: Dict[Tuple[int, int], int] = {}
        self._last_time = float("-inf")
        # Δ actuation timeline: (effective_from, bound) pairs in time
        # order, seeded with the configured Δ from the dawn of time.
        # Grown by controller_actuated events with knob "ttp"/"delta".
        self._delta_schedule: List[Tuple[float, float]] = [(float("-inf"), self.delta)]

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, event: Union[TraceEvent, Dict]) -> None:
        """Process one event (typed, or its ``to_dict`` form)."""
        if isinstance(event, dict):
            event = event_from_dict(event)
        self.report.events += 1
        self._check_time_order(event)
        if isinstance(event, ReadServed):
            self._on_read(event)
        elif isinstance(event, InvalidationReceived):
            self._on_invalidation(event)
        elif isinstance(event, SourceUpdate):
            current = self._current.get(event.item, 0)
            if event.version > current:
                self._current[event.item] = event.version
            # The source's own knowledge is trivially complete.
            self._learn(event.node, event.item, event.version, event.time)
        elif isinstance(event, FaultNodeCrashed):
            self._on_crash(event)
        elif isinstance(event, ControllerActuated):
            self._on_actuation(event)

    def feed_all(self, events: Iterable[Union[TraceEvent, Dict]]) -> "InvariantChecker":
        """Feed a whole trace; returns ``self`` for chaining."""
        for event in events:
            self.feed(event)
        return self

    def finish(self) -> CheckReport:
        """The accumulated report (the checker stays usable)."""
        return self.report

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _check_time_order(self, event: TraceEvent) -> None:
        if event.time < self._last_time - _TIME_EPSILON:
            self._violate(
                "time-order",
                event.time,
                getattr(event, "node", -1),
                getattr(event, "item", -1),
                getattr(event, "version", -1),
                f"timestamp went backwards ({self._last_time:.6f} -> "
                f"{event.time:.6f})",
            )
        self._last_time = max(self._last_time, event.time)

    def _on_invalidation(self, event: InvalidationReceived) -> None:
        self._learn(event.node, event.item, event.version, event.time)

    def _on_actuation(self, event: ControllerActuated) -> None:
        """Record a Δ change on the actuation timeline (other knobs are
        observability-only for the checker)."""
        if event.knob not in ("ttp", "delta"):
            return
        bound = float(event.value)
        if bound > 0:
            self._delta_schedule.append((event.time, bound))

    def _on_crash(self, event: FaultNodeCrashed) -> None:
        """A cache-wiped crash erases what the node can be held to.

        The copies are gone and so is whatever invalidation state was
        stored with them: the node after reboot is a blank cache peer,
        and any copy it later serves was re-fetched through the normal
        machinery, which the remaining contracts cover.  A retained
        crash keeps both the copies and the obligations — the node must
        still honour everything delivered to it before it went down.
        """
        if not event.wiped:
            return
        node = event.node
        for key in [k for k in self._known if k[0] == node]:
            del self._known[key]
        for key in [k for k in self._last_local if k[0] == node]:
            del self._last_local[key]

    def _learn(self, node: int, item: int, version: int, time: float) -> None:
        versions, times = self._known.setdefault((node, item), ([], []))
        if versions and version <= versions[-1]:
            return  # stale or duplicate delivery adds no knowledge
        versions.append(version)
        times.append(time)

    def _on_read(self, read: ReadServed) -> None:
        self.report.reads_checked += 1
        if read.fallback:
            self.report.fallback_reads += 1
        current = self._current.get(read.item, 0)
        if read.version > current:
            self._violate(
                "validity",
                read.time,
                read.node,
                read.item,
                read.version,
                f"served version exceeds ground truth v{current} "
                "(incomplete trace or corrupted versioning)",
            )
        if read.level == "weak" or not read.remote:
            self._check_weak_monotone(read)
        if read.fallback:
            return
        if read.level == "strong":
            self._check_floor(read, "strong", self.slack)
        elif read.level == "delta":
            # allowance=None: resolved per knowledge instant against the
            # Δ actuation timeline inside _check_floor.
            self._check_floor(read, "delta", None)

    def _check_weak_monotone(self, read: ReadServed) -> None:
        """Versions served from a node's own copy never go backwards."""
        if read.remote:
            return  # a remote holder's copy is a different version sequence
        key = (read.node, read.item)
        last = self._last_local.get(key)
        if last is not None and read.version < last and read.level == "weak":
            self._violate(
                "weak-monotone",
                read.time,
                read.node,
                read.item,
                read.version,
                f"older than previously served v{last} at the same node",
            )
        if last is None or read.version > last:
            self._last_local[key] = read.version

    def _check_floor(self, read: ReadServed, invariant: str, allowance) -> None:
        """Did the node *know* of a newer version ``allowance`` seconds ago?

        ``allowance=None`` selects the Δ contract: the bound is resolved
        against the actuation timeline for the instant the knowledge was
        delivered (plus ``slack``).
        """
        known = self._known.get((read.node, read.item))
        if known is None:
            return
        versions, times = known
        # First delivered version strictly newer than what was served:
        index = bisect.bisect_right(versions, read.version)
        if index >= len(versions):
            return  # nothing newer was ever delivered to this node
        knew_at = times[index]
        if allowance is None:
            allowance = self._delta_allowance(knew_at) + self.slack
        lag = read.time - knew_at
        if lag > allowance + _TIME_EPSILON:
            self._violate(
                invariant,
                read.time,
                read.node,
                read.item,
                read.version,
                f"node learned of v{versions[index]} at t={knew_at:.3f} "
                f"({lag:.3f}s before the serve; allowance {allowance:.3f}s)",
            )

    def _delta_allowance(self, knew_at: float) -> float:
        """The Δ bound applicable to knowledge delivered at ``knew_at``.

        A freshness window opened at ``t_w`` under bound ``δ_j`` may
        legitimately serve until ``t_w + δ_j``; knowledge delivered at
        ``knew_at`` can therefore lag by at most ``δ_j`` for *any*
        actuation interval ``[a_j, a_{j+1})`` whose windows could still
        be open at ``knew_at`` — i.e. ``a_j <= knew_at < a_{j+1} + δ_j``.
        The applicable bound is the maximum over those intervals: a
        lowered Δ takes over only once the pre-actuation windows have
        drained, a raised Δ applies immediately.  With no actuations this
        is exactly the configured Δ.
        """
        schedule = self._delta_schedule
        if len(schedule) == 1:
            return self.delta
        best = 0.0
        for j, (start, bound) in enumerate(schedule):
            if j + 1 < len(schedule):
                end = schedule[j + 1][0] + bound
            else:
                end = float("inf")
            if start <= knew_at < end and bound > best:
                best = bound
        return best

    def _violate(
        self,
        invariant: str,
        time: float,
        node: int,
        item: int,
        served_version: int,
        detail: str,
    ) -> None:
        self.report.violations.append(
            Violation(invariant, time, node, item, served_version, detail)
        )


def check_events(
    events: Iterable[Union[TraceEvent, Dict]],
    delta: float = 240.0,
    slack: float = 1.0,
) -> CheckReport:
    """One-shot convenience: replay ``events`` and return the report."""
    return InvariantChecker(delta=delta, slack=slack).feed_all(events).finish()
