"""Observability layer: typed trace events, bus, sinks, invariant checker.

See docs/OBSERVABILITY.md for the event taxonomy and the per-level
consistency contracts the checker enforces.
"""

from repro.obs.bus import NULL_TRACE, NullTraceBus, TraceBus
from repro.obs.checker import CheckReport, InvariantChecker, Violation, check_events
from repro.obs.events import (
    EVENT_TYPES,
    CacheHit,
    CacheMiss,
    FetchCompleted,
    FetchStarted,
    InvalidationReceived,
    InvalidationSent,
    MetricsReset,
    NodeOffline,
    NodeOnline,
    PollAnswered,
    PollSent,
    QueryIssued,
    ReadServed,
    RelayDemoted,
    RelayPromoted,
    SourceUpdate,
    TraceEvent,
    event_from_dict,
    event_to_dict,
    iter_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.obs.sinks import JsonlSink, ListSink, NullSink, TraceSink

__all__ = [
    "TraceBus",
    "NullTraceBus",
    "NULL_TRACE",
    "TraceSink",
    "ListSink",
    "JsonlSink",
    "NullSink",
    "InvariantChecker",
    "CheckReport",
    "Violation",
    "check_events",
    "TraceEvent",
    "QueryIssued",
    "CacheHit",
    "CacheMiss",
    "ReadServed",
    "SourceUpdate",
    "InvalidationSent",
    "InvalidationReceived",
    "PollSent",
    "PollAnswered",
    "FetchStarted",
    "FetchCompleted",
    "RelayPromoted",
    "RelayDemoted",
    "NodeOnline",
    "NodeOffline",
    "MetricsReset",
    "EVENT_TYPES",
    "event_from_dict",
    "event_to_dict",
    "write_jsonl",
    "read_jsonl",
    "iter_jsonl",
]
