"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or re-used illegally."""


class ConfigurationError(ReproError):
    """Raised when a configuration object holds inconsistent values."""


class TopologyError(ReproError):
    """Raised for invalid topology queries (e.g. unknown node identifiers)."""


class RoutingError(TopologyError):
    """Raised when a route is requested between unknown endpoints."""


class CacheError(ReproError):
    """Raised for invalid cooperative-cache operations."""


class CacheCapacityError(CacheError):
    """Raised when a cache is created with a non-positive capacity."""


class UnknownItemError(CacheError):
    """Raised when an operation references a data item that does not exist."""


class ProtocolError(ReproError):
    """Raised when a consistency protocol receives an impossible message."""


class WorkloadError(ReproError):
    """Raised for invalid workload generator parameters."""
