"""Windowed observation signals for the online controller.

The controller is strictly *pull-based*: at every tick it snapshots the
metrics layer (latency recorder, staleness auditor, fault counters, the
:class:`~repro.metrics.degradation.DegradationMeter` when chaos is on)
and the peer coefficient trackers, and derives per-window deltas from
the cumulative values.  Nothing in the hot path pushes to the
controller, so ``controller=None`` leaves every message/timer/metrics
code path untouched.

Warm-up resets are tolerated the same way the traffic sampler tolerates
them: a cumulative counter that appears to have gone *backwards* was
reset, and the post-reset total is the whole window's delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

__all__ = ["ControlSignals", "DeltaTracker"]


@dataclass(frozen=True)
class ControlSignals:
    """One sliding-window observation snapshot handed to a policy.

    All ``*_delta`` style fields count events inside the window that
    ended at :attr:`time`; rates are per simulated second over
    :attr:`window` seconds.
    """

    time: float
    #: Seconds covered by this window (time since the previous sample).
    window: float
    #: Queries issued / answered inside the window.
    queries: int = 0
    answers: int = 0
    #: ``answers / queries`` for the window (1.0 when no queries landed).
    availability: float = 1.0
    #: Arrival rates per simulated second.
    query_rate: float = 0.0
    update_rate: float = 0.0
    #: Stale serves inside the window and their fraction of audited reads.
    stale_reads: int = 0
    stale_rate: float = 0.0
    #: RPCC poll-ladder exhaustions (forced stale fallbacks) in the window.
    forced_stale: int = 0
    #: Fault-layer state: partitions open *now*, and window event counts.
    partitions_active: int = 0
    partitions_started: int = 0
    partitions_healed: int = 0
    crashes: int = 0
    #: Relay overlay size (RPCC only; 0 for push/pull).
    relay_count: int = 0
    #: Mean selection coefficients across online hosts (Section 4.2).
    mean_car: float = 0.0
    mean_cs: float = 0.0
    mean_ce: float = 0.0
    #: DegradationMeter snapshot (empty when no fault plan is attached).
    degradation: Mapping[str, float] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """Cheap composite: is the system visibly under stress right now?"""
        return self.partitions_active > 0 or self.crashes > 0


class DeltaTracker:
    """Derives per-window deltas from monotone cumulative counters.

    ``take(name, total)`` returns ``total - previous_total`` and
    remembers ``total``.  A negative raw delta means the underlying
    counter was reset (warm-up boundary): the post-reset total *is* the
    window's delta.
    """

    def __init__(self) -> None:
        self._last: Dict[str, float] = {}

    def take(self, name: str, total: float) -> float:
        previous = self._last.get(name, 0.0)
        self._last[name] = total
        delta = total - previous
        return total if delta < 0 else delta
