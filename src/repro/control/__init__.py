"""Adaptive self-tuning control loop (the ROADMAP's chaos milestone).

``repro.control`` closes the loop between the observability/fault layers
and the protocol parameters: an :class:`~repro.control.controller.OnlineController`
periodically samples windowed signals (query/update rates, coefficient
tracker outputs, churn/partition events, degradation availability and
stale-serve rate), hands them to a registered
:class:`~repro.control.policies.ControlPolicy`, and applies the resulting
:class:`~repro.control.policies.ControlDecision` through explicit
actuation seams on the consistency strategies.

Design invariants:

* ``controller=None`` (the default) constructs nothing from this package
  — runs are bit-identical to a build without it;
* all controller randomness comes from the named ``"controller"`` RNG
  stream;
* actuations only ever affect *future* protocol state (new freshness
  windows, the next timer re-arm, the next poll) — in-flight state is
  never mutated;
* every actuation is a typed trace event, so the invariant checker can
  re-evaluate the Δ contract at the actuation boundary.
"""

from repro.control.controller import OnlineController
from repro.control.policies import (
    ControlDecision,
    ControlPolicy,
    HysteresisPolicy,
    StaticPolicy,
)
from repro.control.signals import ControlSignals, DeltaTracker

__all__ = [
    "OnlineController",
    "ControlDecision",
    "ControlPolicy",
    "ControlSignals",
    "DeltaTracker",
    "HysteresisPolicy",
    "StaticPolicy",
]
