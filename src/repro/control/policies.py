"""Registered control policies: the static baseline and the hysteresis rule.

A :class:`ControlPolicy` turns one :class:`~repro.control.signals.ControlSignals`
window into at most one :class:`ControlDecision` — a *target* setting for
named knobs, applied by the strategy through its explicit actuation seam
(:meth:`~repro.consistency.base.ConsistencyStrategy.apply_control`).
Policies never touch protocol state themselves; they only name targets.

Anti-oscillation contract (the "graceful degradation guarantee" of the
hysteresis policy):

* **two-point actuation** — every knob only ever takes one of two values,
  its primed baseline or the tightened value ``baseline x tighten_scale``
  (respectively ``x relay_boost`` / ``x backoff_boost`` for the boosted
  knobs), so repeated actuations cannot ratchet parameters away;
* **bounded actuation rate** — at most one actuation per ``cooldown``
  simulated seconds (the cooldown is jittered from the controller's named
  RNG stream so co-scheduled controllers cannot phase-lock);
* **hysteresis** — tightening happens on the first degraded window, but
  relaxing requires ``healthy_windows`` *consecutive* clean windows, so a
  flapping signal cannot flap the parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.control.signals import ControlSignals
from repro.errors import ConfigurationError
from repro.scenarios.registry import register_controller

__all__ = [
    "ControlDecision",
    "ControlPolicy",
    "StaticPolicy",
    "HysteresisPolicy",
]


@dataclass(frozen=True)
class ControlDecision:
    """One actuation request: target values for named knobs.

    ``knobs`` maps knob name -> target value.  Knob names are the
    strategy-owned vocabulary (``ttr``, ``ttp``, ``poll_timeout``,
    ``ttn``, ``relay_boost``, ``backoff_factor``); a strategy applies
    the knobs it owns and ignores the rest, reporting what it actually
    changed.  ``mode_all`` (expanded by the controller into per-item
    ``modes``) selects the dissemination mode — ``"push"``, ``"pull"``
    or ``"hybrid"`` — per catalog item.
    """

    time: float
    policy: str
    reason: str
    knobs: Mapping[str, float] = field(default_factory=dict)
    modes: Mapping[int, str] = field(default_factory=dict)
    mode_all: Optional[str] = None


class ControlPolicy:
    """Interface every registered control policy implements."""

    #: Registry name; also stamped on every decision and trace event.
    name = "?"

    def prime(self, baseline: Mapping[str, float]) -> None:
        """Receive the strategy's initial knob values before the run starts.

        Policies must only actuate knobs present in ``baseline`` — the
        strategy advertised exactly the seams it owns.
        """

    def decide(
        self, signals: ControlSignals, rng: random.Random
    ) -> Optional[ControlDecision]:
        """Return an actuation for this window, or ``None`` to hold."""
        raise NotImplementedError


@register_controller("static")
class StaticPolicy(ControlPolicy):
    """The no-op baseline: observe every window, never actuate.

    This is the *static-parameter* arm of the adaptive-vs-static
    campaign: it pays the full controller sampling cost (so overhead is
    measured honestly) while leaving every protocol parameter at its
    configured value.
    """

    name = "static"

    def decide(
        self, signals: ControlSignals, rng: random.Random
    ) -> Optional[ControlDecision]:
        return None


@register_controller("hysteresis")
class HysteresisPolicy(ControlPolicy):
    """Rule-based two-state controller with bounded actuation and cooldowns.

    On the first *degraded* window (an open partition, forced-stale
    fallbacks, a crash, or availability below ``enter_availability``) it
    tightens: freshness windows shrink to ``tighten_scale`` of baseline
    (so stale copies are re-validated sooner and reconvergence after a
    heal is fast), relay eligibility is boosted by ``relay_boost`` (more
    relays -> polls keep finding an answerer), and the retry backoff
    base grows by ``backoff_boost`` (fewer doomed retries while the
    network is down).  After ``healthy_windows`` consecutive clean
    windows it relaxes every knob back to baseline in one step.
    """

    name = "hysteresis"

    def __init__(
        self,
        tighten_scale: float = 0.25,
        relay_boost: float = 2.0,
        backoff_boost: float = 1.5,
        enter_availability: float = 0.9,
        cooldown: float = 45.0,
        healthy_windows: int = 3,
        cooldown_jitter: float = 0.1,
    ) -> None:
        if not 0.0 < tighten_scale < 1.0:
            raise ConfigurationError(
                f"tighten_scale must be in (0, 1), got {tighten_scale}"
            )
        if relay_boost < 1.0 or backoff_boost < 1.0:
            raise ConfigurationError(
                "relay_boost and backoff_boost must be >= 1, got "
                f"{relay_boost} / {backoff_boost}"
            )
        if cooldown <= 0 or healthy_windows < 1:
            raise ConfigurationError(
                "need cooldown > 0 and healthy_windows >= 1, got "
                f"{cooldown} / {healthy_windows}"
            )
        if not 0.0 <= cooldown_jitter <= 1.0:
            raise ConfigurationError(
                f"cooldown_jitter must be in [0, 1], got {cooldown_jitter}"
            )
        self.tighten_scale = float(tighten_scale)
        self.relay_boost = float(relay_boost)
        self.backoff_boost = float(backoff_boost)
        self.enter_availability = float(enter_availability)
        self.cooldown = float(cooldown)
        self.healthy_windows = int(healthy_windows)
        self.cooldown_jitter = float(cooldown_jitter)
        self._baseline: Dict[str, float] = {}
        self._tight = False
        self._healthy = 0
        self._next_allowed = float("-inf")

    # ------------------------------------------------------------------
    def prime(self, baseline: Mapping[str, float]) -> None:
        self._baseline = dict(baseline)

    @property
    def tight(self) -> bool:
        """``True`` while the tightened parameter set is in force."""
        return self._tight

    def _is_degraded(self, signals: ControlSignals) -> bool:
        return (
            signals.partitions_active > 0
            or signals.crashes > 0
            or signals.forced_stale > 0
            or signals.availability < self.enter_availability
        )

    def _tight_value(self, knob: str, base: float) -> float:
        if knob == "relay_boost":
            return base * self.relay_boost
        if knob == "backoff_factor":
            return base * self.backoff_boost
        return base * self.tighten_scale

    def decide(
        self, signals: ControlSignals, rng: random.Random
    ) -> Optional[ControlDecision]:
        degraded = self._is_degraded(signals)
        if degraded:
            self._healthy = 0
        else:
            self._healthy += 1
        if signals.time < self._next_allowed or not self._baseline:
            return None
        if degraded and not self._tight:
            knobs = {
                knob: self._tight_value(knob, base)
                for knob, base in self._baseline.items()
            }
            # Update-dominated stress: pre-pushing every version to the
            # relays is wasted traffic while invalidations alone keep
            # them correct — flip the dissemination mode to pull.
            mode_all = (
                "pull"
                if signals.update_rate > signals.query_rate and signals.update_rate > 0
                else None
            )
            self._arm_cooldown(signals.time, rng)
            self._tight = True
            return ControlDecision(
                time=signals.time,
                policy=self.name,
                reason=self._reason(signals),
                knobs=knobs,
                mode_all=mode_all,
            )
        if not degraded and self._tight and self._healthy >= self.healthy_windows:
            self._arm_cooldown(signals.time, rng)
            self._tight = False
            self._healthy = 0
            return ControlDecision(
                time=signals.time,
                policy=self.name,
                reason=f"relax after {self.healthy_windows} healthy windows",
                knobs=dict(self._baseline),
                mode_all="hybrid",
            )
        return None

    def _arm_cooldown(self, now: float, rng: random.Random) -> None:
        jitter = 1.0 + self.cooldown_jitter * rng.random()
        self._next_allowed = now + self.cooldown * jitter

    @staticmethod
    def _reason(signals: ControlSignals) -> str:
        if signals.partitions_active > 0:
            return f"tighten: {signals.partitions_active} open partition(s)"
        if signals.crashes > 0:
            return f"tighten: {signals.crashes} crash(es) in window"
        if signals.forced_stale > 0:
            return f"tighten: {signals.forced_stale} forced-stale fallback(s)"
        return f"tighten: availability {signals.availability:.3f}"
