"""The online controller: sample -> decide -> actuate, once per tick.

One :class:`OnlineController` is attached to a simulation when
``config.controller`` names a registered policy.  Each tick it

1. **samples** the metrics layer into a :class:`ControlSignals` window
   (pull-based; nothing in the hot path knows the controller exists),
2. asks the policy to **decide**, and
3. **actuates** the decision through the strategy's explicit seam
   (:meth:`~repro.consistency.base.ConsistencyStrategy.apply_control`),
   emitting one ``controller_actuated`` trace event per knob actually
   changed — the record the invariant checker replays to move its
   knowledge-relative Δ contract to the new bound at the actuation
   boundary.

Determinism: the controller's only RNG is the named ``"controller"``
stream, so runs with ``controller=None`` draw the exact same random
sequences as before the subsystem existed, and two runs with the same
seed and policy actuate identically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.control.policies import ControlDecision, ControlPolicy
from repro.control.signals import ControlSignals, DeltaTracker
from repro.obs.events import ControllerActuated, ControllerSampled
from repro.sim.timers import PeriodicTimer

__all__ = ["OnlineController"]


class OnlineController:
    """Periodic closed loop around one simulation's strategy."""

    def __init__(
        self,
        policy: ControlPolicy,
        strategy,
        metrics,
        streams,
        hosts=(),
        injector=None,
        interval: float = 30.0,
    ) -> None:
        self.policy = policy
        self.strategy = strategy
        self.metrics = metrics
        self.hosts = tuple(hosts)
        self.injector = injector
        self.interval = float(interval)
        self.rng = streams.stream("controller")
        self._deltas = DeltaTracker()
        self._last_sample_at: Optional[float] = None
        self._timer: Optional[PeriodicTimer] = None
        #: Applied decisions, in order: ``{"time", "policy", "reason",
        #: "applied": {knob: value}, "modes": count}`` — surfaced in the
        #: run footer and on :class:`SimulationResult`.
        self.decisions: List[Dict[str, object]] = []
        self.samples_taken = 0

    # ------------------------------------------------------------------
    @property
    def _sim(self):
        return self.strategy.context.sim

    def start(self, batch=None) -> None:
        """Prime the policy with the strategy's knobs and arm the tick timer."""
        baseline = dict(self.strategy.control_knobs())
        self.policy.prime(baseline)
        self._timer = PeriodicTimer(self._sim, self.interval, self._tick)
        if batch is None:
            self._timer.start()
        else:
            self._timer.start(batch)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self) -> ControlSignals:
        """Snapshot the observable state into one window of signals."""
        now = self._sim.now
        window = (
            self.interval
            if self._last_sample_at is None
            else max(now - self._last_sample_at, 1e-9)
        )
        self._last_sample_at = now
        take = self._deltas.take
        metrics = self.metrics
        queries = int(take("issued", metrics.latency.issued))
        answers = int(take("answered", metrics.latency.answered))
        stale = int(take("stale", metrics.staleness.stale_reads()))
        audited = int(take("reads", metrics.staleness.reads))
        updates = int(take("updates", metrics.staleness.updates_recorded))
        forced = int(take("forced_stale", metrics.counter("rpcc_forced_stale")))
        started = int(take("p_start", metrics.counter("fault_partitions_started")))
        healed = int(take("p_heal", metrics.counter("fault_partitions_healed")))
        crashes = int(take("crashes", metrics.counter("fault_crashes")))
        active = (
            self.injector.active_partition_count if self.injector is not None else 0
        )
        car = cs = ce = 0.0
        online = [host for host in self.hosts if host.online]
        if online:
            car = sum(h.tracker.car for h in online) / len(online)
            cs = sum(h.tracker.cs for h in online) / len(online)
            ce = sum(h.tracker.ce for h in online) / len(online)
        relay_count = getattr(self.strategy, "relay_count", lambda: 0)()
        degradation = (
            metrics.degradation.snapshot() if metrics.degradation is not None else {}
        )
        self.samples_taken += 1
        return ControlSignals(
            time=now,
            window=window,
            queries=queries,
            answers=answers,
            availability=answers / queries if queries else 1.0,
            query_rate=queries / window,
            update_rate=updates / window,
            stale_reads=stale,
            stale_rate=stale / audited if audited else 0.0,
            forced_stale=forced,
            partitions_active=active,
            partitions_started=started,
            partitions_healed=healed,
            crashes=crashes,
            relay_count=relay_count,
            mean_car=car,
            mean_cs=cs,
            mean_ce=ce,
            degradation=degradation,
        )

    # ------------------------------------------------------------------
    # The control loop tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        signals = self.sample()
        trace = self._sim.trace
        if trace.enabled:
            trace.emit(
                ControllerSampled(
                    time=signals.time,
                    policy=self.policy.name,
                    availability=signals.availability,
                    stale_rate=signals.stale_rate,
                    query_rate=signals.query_rate,
                    update_rate=signals.update_rate,
                    partitions=signals.partitions_active,
                    relays=signals.relay_count,
                )
            )
        decision = self.policy.decide(signals, self.rng)
        if decision is None:
            return
        self.actuate(decision)

    def actuate(self, decision: ControlDecision) -> Dict[str, float]:
        """Apply one decision through the strategy seam; returns what changed."""
        if decision.mode_all is not None and not decision.modes:
            catalog = self.strategy.context.catalog
            decision = replace(
                decision,
                modes={item: decision.mode_all for item in catalog.item_ids},
            )
        applied = self.strategy.apply_control(decision)
        modes_applied = applied.pop("_modes", 0)
        if not applied and not modes_applied:
            return applied
        trace = self._sim.trace
        if trace.enabled:
            for knob in sorted(applied):
                trace.emit(
                    ControllerActuated(
                        time=decision.time,
                        policy=decision.policy,
                        knob=knob,
                        value=float(applied[knob]),
                        reason=decision.reason,
                    )
                )
            if modes_applied:
                trace.emit(
                    ControllerActuated(
                        time=decision.time,
                        policy=decision.policy,
                        knob="dissemination_mode",
                        value=float(modes_applied),
                        reason=f"{decision.mode_all or 'mixed'}: {decision.reason}",
                    )
                )
        self.decisions.append(
            {
                "time": decision.time,
                "policy": decision.policy,
                "reason": decision.reason,
                "applied": dict(applied),
                "modes": int(modes_applied),
            }
        )
        return applied
