"""Struct-of-arrays fast path for the per-quantum hot loop.

This module holds every numpy-accelerated kernel the network layer can
substitute for its pure-Python inner loops:

* :func:`build_adjacency` — the spatial-hash adjacency build of
  :class:`~repro.net.topology.TopologySnapshot`, with cell keys computed by
  integer floor-divide and candidate-pair distance checks as array ops.
* :func:`bfs_from_csr` — the level-synchronous BFS over a compressed
  sparse-row view of the snapshot, reproducing the scalar traversal's
  discovery order (and therefore parents, items and depth prefix) exactly.
* :class:`SoAPositionLedger` — node positions, online flags and
  position-validity deadlines in contiguous arrays, with bulk mobility
  kernels (:mod:`repro.mobility.bulk`) evaluating whole populations per
  refresh and batched validity-window expiry waking only the nodes whose
  windows actually lapsed.

Everything here is *optional*: numpy ships as the ``perf`` extra.  With
numpy absent — or ``REPRO_SOA=0`` in the environment — :func:`soa_enabled`
is false and the existing scalar code paths run unchanged.  With the fast
path active every observable result (neighbour lists, snapshots, golden
e2e digests) is bit-identical to the scalar path: all float arithmetic is
IEEE-754 double precision applied in the same operation order, and every
ordering the scalar code derives from dict insertion is reproduced from
the registration-rank arrays.
"""

from __future__ import annotations

import math
import os
from collections.abc import Mapping
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.mobility.terrain import Point

__all__ = [
    "HAVE_NUMPY",
    "soa_enabled",
    "ArrayPositions",
    "CsrAdjacency",
    "build_csr",
    "adjacency_from_csr",
    "bfs_from_csr",
    "SoAPositionLedger",
]

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - depends on the install
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Below this population the scalar build wins (numpy call overhead
#: dominates); the property tests drop it to 0 to cover tiny graphs.
BUILD_MIN_NODES = 64


def soa_enabled() -> bool:
    """Whether the vectorized core should run.

    ``REPRO_SOA=0`` forces the scalar path even with numpy installed;
    ``REPRO_SOA=1`` (or unset) selects the vectorized path whenever numpy
    is importable.  Read dynamically so tests can flip the override.
    """
    if not HAVE_NUMPY:
        return False
    return os.environ.get("REPRO_SOA", "1") != "0"


# ----------------------------------------------------------------------
# Vectorized adjacency build
# ----------------------------------------------------------------------
def _ragged_take(starts: "np.ndarray", counts: "np.ndarray") -> "np.ndarray":
    """Indices of the concatenation of ``arange(s, s+c)`` per (s, c) pair."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # One fused repeat: start - exclusive-prefix-sum per group, so adding
    # arange(total) yields start + within-group offset in a single pass.
    cum = np.cumsum(counts)
    base = starts + counts
    base -= cum
    out = np.repeat(base, counts)
    out += np.arange(total, dtype=np.int64)
    return out


class CsrAdjacency:
    """Compressed sparse-row adjacency over registration ranks.

    ``neighbors[indptr[r]:indptr[r+1]]`` lists the neighbour *ranks* of
    the node at rank ``r``, ascending; ``ids[r]`` maps rank back to node
    id.  The id-to-rank table materialises lazily — BFS needs it for one
    source lookup, and many snapshots are never traversed at all.
    """

    __slots__ = ("indptr", "neighbors", "ids", "_rank_table", "_ids_sorted")

    def __init__(self, indptr, neighbors, ids) -> None:
        self.indptr = indptr
        self.neighbors = neighbors
        self.ids = ids
        self._rank_table: Optional[Dict[int, int]] = None
        self._ids_sorted: Optional[bool] = None

    def rank_of(self, node: int) -> int:
        ids_sorted = self._ids_sorted
        if ids_sorted is None:
            # Registration order normally assigns ascending ids, so a
            # binary search replaces the per-snapshot Python dict of every
            # node; one cached vector compare validates the assumption.
            ids = self.ids
            ids_sorted = self._ids_sorted = bool(
                ids.shape[0] == 0 or bool((ids[1:] > ids[:-1]).all())
            )
        if ids_sorted:
            ids = self.ids
            index = int(np.searchsorted(ids, node))
            if index < ids.shape[0] and int(ids[index]) == node:
                return index
            raise KeyError(node)
        table = self._rank_table
        if table is None:
            table = self._rank_table = {
                node_id: rank for rank, node_id in enumerate(self.ids.tolist())
            }
        return table[node]


def build_csr(
    positions: Dict[int, Point],
    radio_range: float,
    position_arrays: Optional[Tuple["np.ndarray", "np.ndarray", "np.ndarray"]] = None,
) -> Optional[CsrAdjacency]:
    """Vectorized unit-disc adjacency over ``positions``.

    Returns the :class:`CsrAdjacency` whose per-node neighbour segments
    are element-for-element equal to the scalar spatial-hash build
    (:func:`adjacency_from_csr` materialises the identical dict-of-lists
    on demand).  Returns ``None`` when the input cannot be vectorized
    (ids outside int64), letting the caller fall back to the scalar
    build.

    ``position_arrays`` may supply precomputed ``(ids, xs, ys)`` arrays
    (the position ledger keeps them hot); they must match ``positions``
    in order and value.
    """
    n = len(positions)
    if position_arrays is None and isinstance(positions, ArrayPositions):
        position_arrays = positions.arrays()
    if position_arrays is not None:
        ids, xs, ys = position_arrays
    else:
        try:
            ids = np.fromiter(positions.keys(), dtype=np.int64, count=n)
        except (OverflowError, TypeError, ValueError):
            return None
        xs = np.fromiter((p.x for p in positions.values()), dtype=np.float64, count=n)
        ys = np.fromiter((p.y for p in positions.values()), dtype=np.float64, count=n)

    if n == 0:
        return CsrAdjacency(
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    cell = radio_range if radio_range > 0 else 1.0
    limit_sq = radio_range * radio_range
    # Cell coordinates match the scalar math.floor(x / cell) exactly.
    cx = np.floor(xs / cell).astype(np.int64)
    cy = np.floor(ys / cell).astype(np.int64)
    # Linearise with a +1 margin so the ±1 offsets below stay in range.
    cx -= cx.min() - 1
    cy -= cy.min() - 1
    height = int(cy.max()) + 2
    keys = cx * height + cy

    order = np.argsort(keys, kind="stable")  # rank order within each cell
    sorted_keys = keys[order]
    # Group boundaries of the (already sorted) keys: np.unique would sort
    # again, a flag-diff scan gets starts/counts in O(n).
    flags = np.empty(n, dtype=bool)
    flags[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=flags[1:])
    starts = np.nonzero(flags)[0]
    uniq = sorted_keys[starts]
    counts = np.empty(starts.shape[0], dtype=np.int64)
    counts[:-1] = starts[1:] - starts[:-1]
    counts[-1] = n - starts[-1]

    # Cell lookup: a dense key -> group table beats a log-n searchsorted
    # join whenever the grid is compact (the usual terrain); degenerate
    # sparse grids keep the searchsorted path.
    table_size = int(cx.max() + 2) * height
    group_of = None
    if table_size <= 4 * n + 1024:
        group_of = np.full(table_size, -1, dtype=np.int64)
        group_of[uniq] = np.arange(uniq.shape[0], dtype=np.int64)

    # Offset (0, 0) yields every ordered same-cell pair (the a < b filter
    # below keeps each unordered pair once); the four half-neighbourhood
    # offsets each yield every cross-cell pair exactly once — the same
    # coverage argument as the scalar build.  All five offsets run as one
    # batched (5, n) lookup; row-major flattening keeps the exact
    # offset-then-rank candidate order of the per-offset loop.
    offsets = np.array(
        [0, height, 1, height + 1, 1 - height], dtype=np.int64
    ).reshape(5, 1)
    targets = (keys + offsets).ravel()
    if group_of is not None:
        slot = group_of[targets]
        valid = slot >= 0
    else:
        slot = np.searchsorted(uniq, targets)
        slot[slot >= len(uniq)] = 0
        valid = uniq[slot] == targets
    cand_a = cand_b = None
    nz = np.nonzero(valid)[0]
    if nz.size:
        slot_sel = slot.take(nz)
        # Row index within the flattened (5, n) matrix mod n is the rank.
        a_sel = nz % n
        g_count = counts[slot_sel]
        take = _ragged_take(starts[slot_sel], g_count)
        b_rank = order[take]
        a_rank = np.repeat(a_sel, g_count)
        # Same-cell block: offset 0 is the first n rows of the flattened
        # matrix, so its expanded candidates form a prefix; a < b keeps
        # each unordered same-cell pair once.
        n0 = int(np.searchsorted(nz, n))
        head = int(g_count[:n0].sum()) if n0 else 0
        if head:
            keep = np.ones(a_rank.shape[0], dtype=bool)
            np.less(a_rank[:head], b_rank[:head], out=keep[:head])
            a_rank = a_rank[keep]
            b_rank = b_rank[keep]
        if a_rank.size:
            cand_a = a_rank
            cand_b = b_rank

    if cand_a is not None:
        # One fused distance pass over every candidate pair; squares and
        # the sum run in place to avoid intermediate allocations.
        dx = xs.take(cand_a)
        dx -= xs.take(cand_b)
        dy = ys.take(cand_a)
        dy -= ys.take(cand_b)
        dx *= dx
        dy *= dy
        dx += dy
        near = dx <= limit_sq
        half_src = cand_a[near]
        half_dst = cand_b[near]
        # Per-node lists ascending by rank == the scalar post-build sort.
        # (src, dst) pairs are unique, so sorting the fused key src*n+dst
        # in place gives exactly the lexsort((dst, src)) order without the
        # argsort-and-gather round trip.
        fused = np.concatenate((half_src, half_dst))
        fused *= n
        fused[: half_src.shape[0]] += half_dst
        fused[half_src.shape[0]:] += half_src
        fused.sort()
        # Segment boundaries fall out of the sorted fused keys directly:
        # indptr[r] = first edge with src >= r, found by binary search.
        indptr = np.empty(n + 1, dtype=np.int64)
        indptr[0] = 0
        indptr[1:] = np.searchsorted(fused, np.arange(1, n + 1, dtype=np.int64) * n)
        src = fused // n
        dst = fused  # reuse the sorted buffer: dst = fused mod n in place
        dst -= src * n
    else:
        dst = np.empty(0, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)

    return CsrAdjacency(indptr, dst, ids)


def adjacency_from_csr(csr: CsrAdjacency) -> Dict[int, List[int]]:
    """Materialise the scalar-identical dict-of-lists view of ``csr``.

    Deferred out of :func:`build_csr` because the per-quantum hot path
    (BFS, floods, membership tests) runs entirely on the arrays; only
    direct neighbour-list consumers pay for the Python dict.
    """
    ids_list = csr.ids.tolist()
    nbr_ids = csr.ids[csr.neighbors].tolist() if csr.neighbors.size else []
    bounds = csr.indptr.tolist()
    adjacency: Dict[int, List[int]] = {}
    lo = 0
    for index, node in enumerate(ids_list):
        hi = bounds[index + 1]
        adjacency[node] = nbr_ids[lo:hi]
        lo = hi
    return adjacency


# ----------------------------------------------------------------------
# Vectorized BFS
# ----------------------------------------------------------------------
def bfs_from_csr(
    csr: CsrAdjacency, source: int, max_depth: Optional[int] = None
) -> Tuple[Dict[int, int], Dict[int, int], List[Tuple[int, int]], List[int]]:
    """BFS tree from ``source`` over a CSR adjacency.

    Returns the same ``(levels, parents, items, prefix)`` quadruple as the
    scalar ``TopologySnapshot._bfs_from`` — including discovery order and
    parent choice: within each depth the scalar loop scans the frontier in
    order and each frontier node's neighbours in rank order, keeping the
    first discovery; taking the first occurrence over the concatenated
    candidate stream reproduces that exactly.

    ``max_depth`` stops the traversal once every node at that depth is
    discovered — levels ``<= max_depth`` of a bounded run are identical to
    the same levels of a full run, so TTL-limited floods can skip the far
    side of a large graph entirely.
    """
    indptr, nbrs, ids = csr.indptr, csr.neighbors, csr.ids
    src = csr.rank_of(source)
    n = ids.shape[0]
    seen = np.zeros(n, dtype=bool)
    seen[src] = True
    frontier = np.array([src], dtype=np.int64)
    rank_chunks = [frontier]
    parent_chunks = [frontier]
    prefix: List[int] = [1]
    while True:
        if max_depth is not None and len(prefix) - 1 >= max_depth:
            break
        counts = indptr[frontier + 1] - indptr[frontier]
        take = _ragged_take(indptr[frontier], counts)
        if take.size == 0:
            break
        candidates = nbrs[take]
        parents_of = np.repeat(frontier, counts)
        fresh = ~seen[candidates]
        candidates = candidates[fresh]
        if candidates.size == 0:
            break
        parents_of = parents_of[fresh]
        uniq, first = np.unique(candidates, return_index=True)
        discovery = np.argsort(first, kind="stable")
        frontier = uniq[discovery]
        seen[frontier] = True
        rank_chunks.append(frontier)
        parent_chunks.append(parents_of[first[discovery]])
        prefix.append(prefix[-1] + int(frontier.shape[0]))

    all_ranks = np.concatenate(rank_chunks)
    node_ids = ids[all_ranks].tolist()
    parent_ids = ids[np.concatenate(parent_chunks)].tolist()
    sizes = [c.shape[0] for c in rank_chunks]
    depths = np.repeat(np.arange(len(sizes)), sizes).tolist()
    levels = dict(zip(node_ids, depths))
    parents = dict(zip(node_ids, parent_ids))
    items = list(zip(node_ids, depths))
    return levels, parents, items, prefix


# ----------------------------------------------------------------------
# Array-backed positions mapping
# ----------------------------------------------------------------------
class ArrayPositions(Mapping):
    """Immutable, registration-ordered node-to-position mapping over arrays.

    The ledger hands one out whenever a refresh changes more nodes than
    the incremental-patch threshold allows: the snapshot rebuild that
    follows consumes the arrays directly, so the per-node ``Point`` dict
    — the dominant cost of a refresh where everybody moves — only
    materialises if something actually reads positions (tests, scalar
    fallbacks, delta patches).  Iteration order is the slot (registration)
    order of the backing arrays, matching the dict the scalar path builds;
    values are Python floats, so a materialised entry is bit-identical to
    its scalar counterpart.
    """

    __slots__ = ("ids", "xs", "ys", "_dict", "_key_set", "_ids_sorted")

    def __init__(self, ids: "np.ndarray", xs: "np.ndarray", ys: "np.ndarray") -> None:
        self.ids = ids
        self.xs = xs
        self.ys = ys
        self._dict: Optional[Dict[int, Point]] = None
        self._key_set = None
        self._ids_sorted: Optional[bool] = None

    def arrays(self) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        """The backing ``(ids, xs, ys)`` arrays (never mutated)."""
        return self.ids, self.xs, self.ys

    def materialized(self) -> Dict[int, Point]:
        """The equivalent plain dict, built once on first demand."""
        mapping = self._dict
        if mapping is None:
            mapping = self._dict = {
                node: Point(px, py)
                for node, px, py in zip(
                    self.ids.tolist(), self.xs.tolist(), self.ys.tolist()
                )
            }
        return mapping

    def __getitem__(self, node: int) -> Point:
        return self.materialized()[node]

    def __iter__(self) -> Iterator[int]:
        return iter(self.ids.tolist())

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def __contains__(self, node: object) -> bool:
        ids_sorted = self._ids_sorted
        if ids_sorted is None:
            # Registration order normally assigns ascending ids; a binary
            # search then answers membership without materialising a
            # Python set of every node per snapshot.
            ids = self.ids
            ids_sorted = self._ids_sorted = bool(
                ids.shape[0] == 0 or bool((ids[1:] > ids[:-1]).all())
            )
        if ids_sorted:
            ids = self.ids
            try:
                index = int(np.searchsorted(ids, node))
            except (TypeError, ValueError):
                return False
            return index < ids.shape[0] and ids[index] == node
        keys = self._key_set
        if keys is None:
            keys = self._key_set = set(self.ids.tolist())
        return node in keys


# ----------------------------------------------------------------------
# Position ledger
# ----------------------------------------------------------------------
class SoAPositionLedger:
    """Positions, online flags and validity deadlines as contiguous arrays.

    The array-backed replacement for the network's per-node position
    ledger *and* the topology service's change diff.  Each
    :meth:`refresh` performs the whole per-quantum position pass in a few
    vector operations:

    1. Batched validity expiry — ``online & (valid_until < now)`` wakes
       only the nodes whose windows actually lapsed.
    2. Bulk mobility — each :mod:`repro.mobility.bulk` kernel evaluates
       its lapsed members in one shot (scalar fallback per node only for
       unrecognised models).
    3. Vectorized delta detection — moved/appeared/departed nodes fall
       out of array comparisons against the last *reported* state, in the
       same order the scalar diff produces (registration order for
       moved/appeared, then departed).

    The returned positions dict is never mutated after it is handed out:
    refreshes that change anything build a fresh dict (copy-on-change),
    so snapshots may keep references without aliasing hazards.

    Online state is maintained from the network's churn notifications
    (:meth:`note_state`) — the :class:`~repro.net.node.NetworkNode`
    contract requires every flip to call ``notify_state_change``.
    """

    #: Mirror of ``TopologyService.delta_fraction`` / ``delta_floor``:
    #: deltas past this threshold end in a from-scratch array build, so
    #: the ledger skips Point-dict maintenance and returns
    #: :class:`ArrayPositions` instead.  Correctness never depends on the
    #: values matching the service's — only which fast path is taken.
    PATCH_FRACTION = 0.25
    PATCH_FLOOR = 4

    def __init__(self) -> None:
        self._nodes: List = []
        self._slot_of: Dict[int, int] = {}
        self._ids: List[int] = []
        self._pending: List = []
        self._kernels: Dict[type, object] = {}
        self._x = np.empty(0, dtype=np.float64)
        self._y = np.empty(0, dtype=np.float64)
        self._valid_until = np.empty(0, dtype=np.float64)
        self._online = np.empty(0, dtype=bool)
        self._reported_online = np.empty(0, dtype=bool)
        self._reported_x = np.empty(0, dtype=np.float64)
        self._reported_y = np.empty(0, dtype=np.float64)
        self._positions: Dict[int, Point] = {}
        self._ids_arr = np.empty(0, dtype=np.int64)

    def add(self, node) -> None:
        """Track ``node`` (called at network registration)."""
        slot = len(self._nodes) + len(self._pending)
        self._slot_of[node.node_id] = slot
        self._pending.append(node)

    def note_state(self, node) -> None:
        """Record an online/offline flip (network churn notification)."""
        slot = self._slot_of[node.node_id]
        if slot < self._online.shape[0]:
            self._online[slot] = node.online
        # Pending nodes are absorbed with their live online flag.

    def _absorb_pending(self) -> None:
        from repro.mobility import bulk

        start = len(self._nodes)
        fresh = self._pending
        self._pending = []
        touched = set()
        for offset, node in enumerate(fresh):
            slot = start + offset
            self._nodes.append(node)
            self._ids.append(node.node_id)
            model = getattr(node, "mobility", None)
            kernel_cls = bulk.kernel_class_for(model)
            kernel = self._kernels.get(kernel_cls)
            if kernel is None:
                kernel = self._kernels[kernel_cls] = kernel_cls()
            member = node if kernel_cls is bulk.FallbackKernel else model
            kernel.add(slot, member)
            touched.add(kernel)
        for kernel in touched:
            kernel.finalize()
        total = len(self._nodes)

        def grow(old, fill, dtype):
            fresh_arr = np.full(total, fill, dtype=dtype)
            fresh_arr[: old.shape[0]] = old
            return fresh_arr

        self._x = grow(self._x, math.nan, np.float64)
        self._y = grow(self._y, math.nan, np.float64)
        self._valid_until = grow(self._valid_until, -math.inf, np.float64)
        self._online = grow(self._online, False, bool)
        self._reported_online = grow(self._reported_online, False, bool)
        self._reported_x = grow(self._reported_x, math.nan, np.float64)
        self._reported_y = grow(self._reported_y, math.nan, np.float64)
        for offset, node in enumerate(fresh):
            self._online[start + offset] = node.online
        self._ids_arr = np.asarray(self._ids, dtype=np.int64)

    def online_arrays(self) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        """``(ids, xs, ys)`` of the online nodes, in registration order.

        Matches the dict the latest :meth:`refresh` returned, saving the
        from-scratch snapshot build its per-position extraction pass.
        """
        slots = np.nonzero(self._online)[0]
        return self._ids_arr[slots], self._x[slots], self._y[slots]

    def refresh(self, now: float) -> Tuple[Dict[int, Point], Sequence[int]]:
        """Sample lapsed windows and diff against the last reported state.

        Returns ``(positions, changed)``: the registration-ordered mapping
        of online node to position, and the node ids whose state differs
        from the previous report (moved, appeared or departed) in the
        order the scalar service diff would list them.
        """
        if self._pending:
            self._absorb_pending()
        online = self._online
        valid_until = self._valid_until
        lapsed = online & (valid_until < now)
        if lapsed.any():
            x, y = self._x, self._y
            for kernel in self._kernels.values():
                local = kernel.local_needs(lapsed)
                if local.size:
                    kernel.sample(now, local, x, y, valid_until)

        reported_online = self._reported_online
        appeared = online & ~reported_online
        departed = reported_online & ~online
        moved = lapsed & reported_online & (
            (self._x != self._reported_x) | (self._y != self._reported_y)
        )
        churned = bool(appeared.any() or departed.any())
        if not churned and not moved.any():
            return self._positions, ()

        first_arr = np.nonzero(moved | appeared)[0]
        changed = self._ids_arr[first_arr].tolist()
        dep_arr = np.nonzero(departed)[0]
        if dep_arr.size:
            changed.extend(self._ids_arr[dep_arr].tolist())

        refreshed = np.nonzero(lapsed)[0]
        self._reported_x[refreshed] = self._x[refreshed]
        self._reported_y[refreshed] = self._y[refreshed]
        self._reported_online = online.copy()

        n_online = int(online.sum())
        if len(changed) > max(
            self.PATCH_FLOOR, int(n_online * self.PATCH_FRACTION)
        ):
            # The delta exceeds the topology service's incremental-patch
            # threshold, so the refresh ends in a from-scratch array
            # build: hand out the arrays and skip the Point dict — it
            # materialises lazily if anything actually reads positions.
            slots = np.nonzero(online)[0]
            self._positions = ArrayPositions(
                self._ids_arr[slots], self._x[slots], self._y[slots]
            )
            return self._positions, changed

        base = self._positions
        if isinstance(base, ArrayPositions):
            base = base.materialized()
        first = first_arr.tolist()
        ids = self._ids
        # tolist() hands back Python floats, so Points never leak numpy
        # scalars into snapshot positions or anything derived from them.
        # Every slot in ``first`` genuinely changed value (the moved mask
        # compares against the last report), so each needs a fresh Point.
        x_list = self._x[first_arr].tolist() if first else ()
        y_list = self._y[first_arr].tolist() if first else ()
        if churned:
            # Membership changed: rebuild in registration (slot) order so
            # appeared nodes land at their registry position, exactly as
            # the scalar per-registry scan emits them.
            fresh = {
                slot: Point(x_list[index], y_list[index])
                for index, slot in enumerate(first)
            }
            positions = {}
            for slot in np.nonzero(online)[0].tolist():
                node = ids[slot]
                point = fresh.get(slot)
                positions[node] = point if point is not None else base[node]
            self._positions = positions
        else:
            positions = dict(base)
            for index, slot in enumerate(first):
                positions[ids[slot]] = Point(x_list[index], y_list[index])
            self._positions = positions
        return self._positions, changed
