"""Wireless link model: per-hop delay and stochastic loss.

The paper's evaluation treats processing time as negligible and reports
traffic in message counts, so the defaults here are a simple fixed-latency,
2 Mbps (IEEE 802.11b-era) link with no loss.  Loss is available for the
failure-injection tests and robustness ablations.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["LinkModel"]


class LinkModel:
    """Per-hop transmission characteristics.

    Parameters
    ----------
    latency:
        Fixed per-hop propagation + MAC access delay in seconds.
    bandwidth_bps:
        Link bandwidth in bits per second; serialisation delay is
        ``size_bytes * 8 / bandwidth_bps``.
    loss_rate:
        Independent probability that a single hop transmission is lost.
    rng:
        Random stream used for loss draws; required when ``loss_rate > 0``.
    """

    def __init__(
        self,
        latency: float = 0.005,
        bandwidth_bps: float = 2_000_000.0,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency!r}")
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth_bps!r}")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        if loss_rate > 0 and rng is None:
            raise ConfigurationError("a loss_rate > 0 requires an rng")
        self.latency = float(latency)
        self.bandwidth_bps = float(bandwidth_bps)
        self.loss_rate = float(loss_rate)
        self._rng = rng

    def hop_delay(self, size_bytes: int) -> float:
        """Delay for one hop carrying ``size_bytes`` of payload."""
        return self.latency + (size_bytes * 8.0) / self.bandwidth_bps

    def path_delay(self, size_bytes: int, hops: int) -> float:
        """End-to-end delay over ``hops`` store-and-forward hops."""
        return self.hop_delay(size_bytes) * max(0, hops)

    def hop_is_lost(self) -> bool:
        """Sample whether a single hop transmission is dropped."""
        if self.loss_rate <= 0.0:
            return False
        assert self._rng is not None  # guaranteed by constructor
        return self._rng.random() < self.loss_rate
