"""Wireless link model: per-hop delay and stochastic loss.

The paper's evaluation treats processing time as negligible and reports
traffic in message counts, so the defaults here are a simple fixed-latency,
2 Mbps (IEEE 802.11b-era) link with no loss.  Loss is available for the
failure-injection tests and robustness ablations.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["GilbertElliott", "LinkModel"]


class GilbertElliott:
    """Two-state Markov (Gilbert–Elliott) burst-loss chain for one link.

    The chain is in a ``good`` or ``bad`` state; each transmission is
    dropped with that state's loss probability, then the state advances
    (good->bad with ``p_good_bad``, bad->good with ``p_bad_good``).
    Runs of the bad state produce the loss *bursts* that distinguish
    fading radio channels from a uniform per-packet coin flip.

    Chains start in the good state and share the caller-provided ``rng``
    (one named stream per run), so the sequence of draws — and therefore
    the whole fault schedule — is a pure function of the run seed and
    the deterministic event order.
    """

    __slots__ = ("p_good_bad", "p_bad_good", "loss_good", "loss_bad", "bad", "_rng")

    def __init__(
        self,
        p_good_bad: float,
        p_bad_good: float,
        loss_good: float,
        loss_bad: float,
        rng: random.Random,
    ) -> None:
        for name, value in (
            ("p_good_bad", p_good_bad),
            ("p_bad_good", p_bad_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
        self.p_good_bad = float(p_good_bad)
        self.p_bad_good = float(p_bad_good)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self.bad = False
        self._rng = rng

    def sample_loss(self) -> bool:
        """Drop decision for one transmission; advances the chain state."""
        rng = self._rng
        lost = rng.random() < (self.loss_bad if self.bad else self.loss_good)
        if self.bad:
            if rng.random() < self.p_bad_good:
                self.bad = False
        elif rng.random() < self.p_good_bad:
            self.bad = True
        return lost


class LinkModel:
    """Per-hop transmission characteristics.

    Parameters
    ----------
    latency:
        Fixed per-hop propagation + MAC access delay in seconds.
    bandwidth_bps:
        Link bandwidth in bits per second; serialisation delay is
        ``size_bytes * 8 / bandwidth_bps``.
    loss_rate:
        Independent probability that a single hop transmission is lost.
    rng:
        Random stream used for loss draws; required when ``loss_rate > 0``.
    """

    def __init__(
        self,
        latency: float = 0.005,
        bandwidth_bps: float = 2_000_000.0,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency!r}")
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth_bps!r}")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        if loss_rate > 0 and rng is None:
            raise ConfigurationError("a loss_rate > 0 requires an rng")
        self.latency = float(latency)
        self.bandwidth_bps = float(bandwidth_bps)
        self.loss_rate = float(loss_rate)
        self._rng = rng

    def hop_delay(self, size_bytes: int) -> float:
        """Delay for one hop carrying ``size_bytes`` of payload."""
        return self.latency + (size_bytes * 8.0) / self.bandwidth_bps

    def path_delay(self, size_bytes: int, hops: int) -> float:
        """End-to-end delay over ``hops`` store-and-forward hops."""
        return self.hop_delay(size_bytes) * max(0, hops)

    def hop_is_lost(self) -> bool:
        """Sample whether a single hop transmission is dropped."""
        if self.loss_rate <= 0.0:
            return False
        assert self._rng is not None  # guaranteed by constructor
        return self._rng.random() < self.loss_rate
