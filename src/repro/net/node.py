"""Interface that every network participant implements.

The network layer is deliberately ignorant of caching and consistency: it
only needs each node's identity, position, online status, and an inbox.
:class:`~repro.peers.host.MobileHost` implements this interface; tests use
small stand-ins.
"""

from __future__ import annotations

import abc

from repro.mobility.terrain import Point
from repro.net.message import Message

__all__ = ["NetworkNode"]


class NetworkNode(abc.ABC):
    """A node addressable by the simulated network."""

    @property
    @abc.abstractmethod
    def node_id(self) -> int:
        """Unique node identifier."""

    @property
    @abc.abstractmethod
    def online(self) -> bool:
        """``True`` while the node can send, receive and forward."""

    @abc.abstractmethod
    def current_position(self) -> Point:
        """The node's position at the current simulation time."""

    @abc.abstractmethod
    def deliver(self, message: Message) -> None:
        """Handle a message that arrived at this node."""

    def on_transmit(self, message: Message) -> None:
        """Hook fired when this node (re)transmits a message (energy cost)."""

    def on_receive(self, message: Message) -> None:
        """Hook fired when this node receives a transmission (energy cost)."""
