"""Interface that every network participant implements.

The network layer is deliberately ignorant of caching and consistency: it
only needs each node's identity, position, online status, and an inbox.
:class:`~repro.peers.host.MobileHost` implements this interface; tests use
small stand-ins.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.mobility.terrain import Point
from repro.net.message import Message

__all__ = ["NetworkNode"]


class NetworkNode(abc.ABC):
    """A node addressable by the simulated network."""

    # Set by Network.register; class-level default keeps stand-ins simple.
    _state_listener: Optional[Callable[["NetworkNode"], None]] = None

    @property
    @abc.abstractmethod
    def node_id(self) -> int:
        """Unique node identifier."""

    @property
    @abc.abstractmethod
    def online(self) -> bool:
        """``True`` while the node can send, receive and forward."""

    @abc.abstractmethod
    def current_position(self) -> Point:
        """The node's position at the current simulation time."""

    def position_valid_until(self) -> float:
        """Absolute simulation time until which :meth:`current_position` is
        guaranteed to return an equal position.

        The network layer caches positions inside this window instead of
        re-sampling the mobility model every topology refresh.  The default
        gives no guarantee (``-inf``), which keeps simple test stand-ins
        correct; hosts backed by a mobility model delegate to
        :meth:`repro.mobility.MobilityModel.position_valid_until`.
        """
        return float("-inf")

    @abc.abstractmethod
    def deliver(self, message: Message) -> None:
        """Handle a message that arrived at this node."""

    def on_transmit(self, message: Message) -> None:
        """Hook fired when this node (re)transmits a message (energy cost)."""

    def on_receive(self, message: Message) -> None:
        """Hook fired when this node receives a transmission (energy cost)."""

    def bind_state_listener(
        self, listener: Optional[Callable[["NetworkNode"], None]]
    ) -> None:
        """Install the network's online/offline observer (set at registration)."""
        self._state_listener = listener

    def notify_state_change(self) -> None:
        """Tell the bound network that this node just flipped online/offline.

        Concrete nodes must call this from their online-state transition
        path so cached topology snapshots never route through a node that
        has already gone offline (or miss one that just came back).
        """
        listener = self._state_listener
        if listener is not None:
            listener(self)
