"""Dynamic connectivity graph under the unit-disc radio model.

Two online nodes are neighbours when their Euclidean distance is at most
the communication range (250 m in Table 1).  Because nodes move, the
topology is a function of time; :class:`TopologyService` samples node
positions on demand and caches the resulting :class:`TopologySnapshot` for
a short quantum so that bursts of sends at (nearly) the same instant reuse
one graph.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.mobility.terrain import Point

__all__ = ["TopologySnapshot", "TopologyService"]


class TopologySnapshot:
    """Immutable connectivity graph at one instant.

    Parameters
    ----------
    positions:
        Mapping of *online* node id to position.  Offline nodes simply do
        not appear: they can neither send, receive, nor forward.
    radio_range:
        Disc-model communication range in metres.
    """

    def __init__(self, positions: Dict[int, Point], radio_range: float) -> None:
        self.positions = dict(positions)
        self.radio_range = float(radio_range)
        self._adjacency: Dict[int, List[int]] = {node: [] for node in self.positions}
        self._build_adjacency()

    def _build_adjacency(self) -> None:
        nodes = list(self.positions.items())
        limit_sq = self.radio_range * self.radio_range
        for index, (node_a, pos_a) in enumerate(nodes):
            for node_b, pos_b in nodes[index + 1:]:
                dx = pos_a.x - pos_b.x
                dy = pos_a.y - pos_b.y
                if dx * dx + dy * dy <= limit_sq:
                    self._adjacency[node_a].append(node_b)
                    self._adjacency[node_b].append(node_a)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Set[int]:
        """Identifiers of the online nodes in this snapshot."""
        return set(self.positions)

    def __contains__(self, node: int) -> bool:
        return node in self.positions

    def neighbors(self, node: int) -> List[int]:
        """Online one-hop neighbours of ``node``."""
        try:
            return list(self._adjacency[node])
        except KeyError:
            raise TopologyError(f"node {node!r} is not online in this snapshot") from None

    def degree(self, node: int) -> int:
        """Number of one-hop neighbours of ``node``."""
        return len(self.neighbors(node))

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """Hop-minimal path from ``source`` to ``target`` (inclusive).

        Returns ``None`` when the nodes are partitioned, ``[source]`` when
        ``source == target``.
        """
        if source not in self._adjacency:
            raise TopologyError(f"source node {source!r} is not online")
        if target not in self._adjacency:
            return None
        if source == target:
            return [source]
        parents: Dict[int, int] = {source: source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor in parents:
                    continue
                parents[neighbor] = current
                if neighbor == target:
                    return self._walk_back(parents, source, target)
                queue.append(neighbor)
        return None

    @staticmethod
    def _walk_back(parents: Dict[int, int], source: int, target: int) -> List[int]:
        path = [target]
        node = target
        while node != source:
            node = parents[node]
            path.append(node)
        path.reverse()
        return path

    def hop_distance(self, source: int, target: int) -> Optional[int]:
        """Number of hops on a shortest path, or ``None`` if unreachable."""
        path = self.shortest_path(source, target)
        if path is None:
            return None
        return len(path) - 1

    def bfs_levels(self, source: int, max_depth: Optional[int] = None) -> Dict[int, int]:
        """Hop distance from ``source`` for every node within ``max_depth``.

        The source itself appears with depth 0.  This drives TTL-limited
        flooding: nodes at depth ``d <= TTL`` hear the flood.
        """
        if source not in self._adjacency:
            raise TopologyError(f"source node {source!r} is not online")
        levels: Dict[int, int] = {source: 0}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            depth = levels[current]
            if max_depth is not None and depth >= max_depth:
                continue
            for neighbor in self._adjacency[current]:
                if neighbor not in levels:
                    levels[neighbor] = depth + 1
                    queue.append(neighbor)
        return levels

    def connected_components(self) -> List[Set[int]]:
        """Partition of the online nodes into connected components."""
        remaining = set(self._adjacency)
        components: List[Set[int]] = []
        while remaining:
            seed = next(iter(remaining))
            component = set(self.bfs_levels(seed))
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """``True`` when all online nodes form a single component."""
        if not self._adjacency:
            return True
        return len(self.connected_components()) == 1

    def edge_count(self) -> int:
        """Number of undirected radio links in the snapshot."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2


class TopologyService:
    """Samples node state into cached :class:`TopologySnapshot` objects.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time.
    node_states:
        Callable returning the *current* iterable of ``(node_id, position,
        online)`` triples.  The network layer supplies this from its node
        registry.
    radio_range:
        Disc-model communication range in metres.
    quantum:
        Snapshots are reused for this many seconds.  With 20 m/s peak node
        speed, a 1 s quantum bounds position error by 20 m — well under the
        250 m radio range.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        node_states: Callable[[], Iterable[Tuple[int, Point, bool]]],
        radio_range: float,
        quantum: float = 1.0,
    ) -> None:
        if radio_range <= 0:
            raise TopologyError(f"radio_range must be positive, got {radio_range!r}")
        if quantum <= 0:
            raise TopologyError(f"quantum must be positive, got {quantum!r}")
        self._clock = clock
        self._node_states = node_states
        self.radio_range = float(radio_range)
        self.quantum = float(quantum)
        self._cached: Optional[TopologySnapshot] = None
        self._cached_bucket: Optional[int] = None
        self.snapshots_built = 0

    def current(self) -> TopologySnapshot:
        """Return the snapshot for the current time bucket."""
        bucket = int(math.floor(self._clock() / self.quantum))
        if self._cached is not None and bucket == self._cached_bucket:
            return self._cached
        positions = {
            node_id: position
            for node_id, position, online in self._node_states()
            if online
        }
        self._cached = TopologySnapshot(positions, self.radio_range)
        self._cached_bucket = bucket
        self.snapshots_built += 1
        return self._cached

    def invalidate(self) -> None:
        """Drop the cached snapshot (call after abrupt online/offline flips)."""
        self._cached = None
        self._cached_bucket = None
