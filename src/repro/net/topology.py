"""Dynamic connectivity graph under the unit-disc radio model.

Two online nodes are neighbours when their Euclidean distance is at most
the communication range (250 m in Table 1).  Because nodes move, the
topology is a function of time; :class:`TopologyService` samples node
positions on demand and caches the resulting :class:`TopologySnapshot` for
a short quantum so that bursts of sends at (nearly) the same instant reuse
one graph.

Fast paths
----------
Snapshots sit in the inner loop of every experiment, so two optimisations
keep them cheap without changing any observable result:

* **Spatial-hash adjacency build.**  Nodes are bucketed into a uniform
  grid with cell size equal to the radio range; only the 3x3 cell
  neighbourhood can contain nodes within range, so the build is
  O(N*k) for k nodes per neighbourhood instead of the naive O(N^2)
  all-pairs scan.  Adjacency is stored both as ordered lists (BFS and
  flood iteration order must stay deterministic) and as frozen sets for
  an O(1) :meth:`TopologySnapshot.has_edge`.
* **Per-source BFS memoisation.**  A snapshot is immutable, so one full
  O(V+E) traversal per source serves every subsequent ``shortest_path``,
  ``hop_distance``, ``bfs_levels``, flood and reachability query against
  that snapshot.  Traffic bursts within a topology quantum therefore pay
  for BFS once and do dict lookups afterwards.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.mobility.terrain import Point

__all__ = ["TopologySnapshot", "TopologyService"]


class TopologySnapshot:
    """Immutable connectivity graph at one instant.

    Parameters
    ----------
    positions:
        Mapping of *online* node id to position.  Offline nodes simply do
        not appear: they can neither send, receive, nor forward.
    radio_range:
        Disc-model communication range in metres.
    """

    def __init__(self, positions: Dict[int, Point], radio_range: float) -> None:
        self.positions = dict(positions)
        self.radio_range = float(radio_range)
        self._adjacency: Dict[int, List[int]] = {node: [] for node in self.positions}
        self._neighbor_sets: Dict[int, frozenset] = {}
        # source -> (levels, parents, items, prefix) of one full BFS, filled
        # lazily: items is levels as a list and prefix[d] counts nodes at
        # depth <= d, so depth-limited queries are a single list slice.
        self._bfs_cache: Dict[
            int,
            Tuple[Dict[int, int], Dict[int, int], List[Tuple[int, int]], List[int]],
        ] = {}
        self._build_adjacency()

    def _build_adjacency(self) -> None:
        # Uniform spatial hash: with cell size == radio range, any node
        # within range of a cell lies in that cell's 3x3 neighbourhood.
        cell = self.radio_range if self.radio_range > 0 else 1.0
        grid: Dict[Tuple[int, int], List[Tuple[int, Point]]] = {}
        for node, pos in self.positions.items():
            key = (math.floor(pos.x / cell), math.floor(pos.y / cell))
            grid.setdefault(key, []).append((node, pos))
        adjacency = self._adjacency
        limit_sq = self.radio_range * self.radio_range
        # Half-neighbourhood offsets: each unordered cell pair is visited
        # exactly once; same-cell pairs are handled by the i<j inner loop.
        half = ((1, 0), (0, 1), (1, 1), (-1, 1))
        for (cx, cy), members in grid.items():
            for index, (node_a, pos_a) in enumerate(members):
                for node_b, pos_b in members[index + 1:]:
                    dx = pos_a.x - pos_b.x
                    dy = pos_a.y - pos_b.y
                    if dx * dx + dy * dy <= limit_sq:
                        adjacency[node_a].append(node_b)
                        adjacency[node_b].append(node_a)
            for ox, oy in half:
                other = grid.get((cx + ox, cy + oy))
                if other is None:
                    continue
                for node_a, pos_a in members:
                    for node_b, pos_b in other:
                        dx = pos_a.x - pos_b.x
                        dy = pos_a.y - pos_b.y
                        if dx * dx + dy * dy <= limit_sq:
                            adjacency[node_a].append(node_b)
                            adjacency[node_b].append(node_a)
        # The naive all-pairs build emitted each neighbour list sorted by
        # node insertion order; restore that order so BFS traversal (and
        # therefore every routing/flood decision) is bit-identical.
        order = {node: rank for rank, node in enumerate(self.positions)}
        for neighbors in adjacency.values():
            neighbors.sort(key=order.__getitem__)
        self._neighbor_sets = {
            node: frozenset(neighbors) for node, neighbors in adjacency.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Set[int]:
        """Identifiers of the online nodes in this snapshot."""
        return set(self.positions)

    def __contains__(self, node: int) -> bool:
        return node in self.positions

    def neighbors(self, node: int) -> List[int]:
        """Online one-hop neighbours of ``node``."""
        try:
            return list(self._adjacency[node])
        except KeyError:
            raise TopologyError(f"node {node!r} is not online in this snapshot") from None

    def has_edge(self, node_a: int, node_b: int) -> bool:
        """O(1) check whether a radio link ``node_a -- node_b`` exists.

        Returns ``False`` (rather than raising) when either endpoint is
        not online in this snapshot, so route-liveness scans need no
        separate membership pass.
        """
        members = self._neighbor_sets.get(node_a)
        return members is not None and node_b in members

    def degree(self, node: int) -> int:
        """Number of one-hop neighbours of ``node``."""
        return len(self.neighbors(node))

    def _bfs_from(
        self, source: int
    ) -> Tuple[Dict[int, int], Dict[int, int], List[Tuple[int, int]], List[int]]:
        """Full BFS tree from ``source``, computed once per snapshot."""
        cached = self._bfs_cache.get(source)
        if cached is not None:
            return cached
        # Level-synchronous BFS: same discovery order as a FIFO queue, but
        # without per-node deque and depth-lookup overhead.
        levels: Dict[int, int] = {source: 0}
        parents: Dict[int, int] = {source: source}
        adjacency = self._adjacency
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            next_frontier: List[int] = []
            for current in frontier:
                for neighbor in adjacency[current]:
                    if neighbor not in levels:
                        levels[neighbor] = depth
                        parents[neighbor] = current
                        next_frontier.append(neighbor)
            frontier = next_frontier
        items = list(levels.items())
        # items is in nondecreasing-depth order; prefix[d] = |{depth <= d}|.
        prefix: List[int] = []
        for index, (_, depth) in enumerate(items):
            while len(prefix) <= depth:
                prefix.append(index)
            prefix[depth] = index + 1
        cached = (levels, parents, items, prefix)
        self._bfs_cache[source] = cached
        return cached

    @property
    def bfs_cache_size(self) -> int:
        """Number of sources whose BFS tree is currently memoised."""
        return len(self._bfs_cache)

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """Hop-minimal path from ``source`` to ``target`` (inclusive).

        Returns ``None`` when the nodes are partitioned, ``[source]`` when
        ``source == target``.
        """
        if source not in self._adjacency:
            raise TopologyError(f"source node {source!r} is not online")
        if target not in self._adjacency:
            return None
        if source == target:
            return [source]
        levels, parents, _, _ = self._bfs_from(source)
        if target not in levels:
            return None
        return self._walk_back(parents, source, target)

    @staticmethod
    def _walk_back(parents: Dict[int, int], source: int, target: int) -> List[int]:
        path = [target]
        node = target
        while node != source:
            node = parents[node]
            path.append(node)
        path.reverse()
        return path

    def hop_distance(self, source: int, target: int) -> Optional[int]:
        """Number of hops on a shortest path, or ``None`` if unreachable."""
        if source not in self._adjacency:
            raise TopologyError(f"source node {source!r} is not online")
        if target not in self._adjacency:
            return None
        levels, _, _, _ = self._bfs_from(source)
        return levels.get(target)

    def bfs_levels(self, source: int, max_depth: Optional[int] = None) -> Dict[int, int]:
        """Hop distance from ``source`` for every node within ``max_depth``.

        The source itself appears with depth 0.  This drives TTL-limited
        flooding: nodes at depth ``d <= TTL`` hear the flood.  The returned
        dict preserves BFS discovery order and is a fresh copy the caller
        may mutate.
        """
        if source not in self._adjacency:
            raise TopologyError(f"source node {source!r} is not online")
        levels, _, items, prefix = self._bfs_from(source)
        # items is in BFS discovery order, i.e. nondecreasing depth, so the
        # depth limit selects a precomputed prefix of the traversal.
        if max_depth is None or max_depth >= len(prefix) - 1:
            return dict(levels)
        if max_depth < 0:
            max_depth = 0
        return dict(items[: prefix[max_depth]])

    def connected_components(self) -> List[Set[int]]:
        """Partition of the online nodes into connected components."""
        remaining = set(self._adjacency)
        components: List[Set[int]] = []
        while remaining:
            seed = next(iter(remaining))
            component = set(self.bfs_levels(seed))
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """``True`` when all online nodes form a single component."""
        if not self._adjacency:
            return True
        return len(self.connected_components()) == 1

    def edge_count(self) -> int:
        """Number of undirected radio links in the snapshot."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2


class TopologyService:
    """Samples node state into cached :class:`TopologySnapshot` objects.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time.
    node_states:
        Callable returning the *current* iterable of ``(node_id, position,
        online)`` triples.  The network layer supplies this from its node
        registry.
    radio_range:
        Disc-model communication range in metres.
    quantum:
        Snapshots are reused for this many seconds.  With 20 m/s peak node
        speed, a 1 s quantum bounds position error by 20 m — well under the
        250 m radio range.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        node_states: Callable[[], Iterable[Tuple[int, Point, bool]]],
        radio_range: float,
        quantum: float = 1.0,
    ) -> None:
        if radio_range <= 0:
            raise TopologyError(f"radio_range must be positive, got {radio_range!r}")
        if quantum <= 0:
            raise TopologyError(f"quantum must be positive, got {quantum!r}")
        self._clock = clock
        self._node_states = node_states
        self.radio_range = float(radio_range)
        self.quantum = float(quantum)
        self._cached: Optional[TopologySnapshot] = None
        self._cached_bucket: Optional[int] = None
        self.snapshots_built = 0
        self.invalidations = 0

    def current(self) -> TopologySnapshot:
        """Return the snapshot for the current time bucket."""
        bucket = int(math.floor(self._clock() / self.quantum))
        if self._cached is not None and bucket == self._cached_bucket:
            return self._cached
        positions = {
            node_id: position
            for node_id, position, online in self._node_states()
            if online
        }
        self._cached = TopologySnapshot(positions, self.radio_range)
        self._cached_bucket = bucket
        self.snapshots_built += 1
        return self._cached

    def invalidate(self) -> None:
        """Drop the cached snapshot (call after abrupt online/offline flips)."""
        self._cached = None
        self._cached_bucket = None
        self.invalidations += 1
