"""Dynamic connectivity graph under the unit-disc radio model.

Two online nodes are neighbours when their Euclidean distance is at most
the communication range (250 m in Table 1).  Because nodes move, the
topology is a function of time; :class:`TopologyService` samples node
positions on demand and caches the resulting :class:`TopologySnapshot` for
a short quantum so that bursts of sends at (nearly) the same instant reuse
one graph.

Fast paths
----------
Snapshots sit in the inner loop of every experiment, so two optimisations
keep them cheap without changing any observable result:

* **Spatial-hash adjacency build.**  Nodes are bucketed into a uniform
  grid with cell size equal to the radio range; only the 3x3 cell
  neighbourhood can contain nodes within range, so the build is
  O(N*k) for k nodes per neighbourhood instead of the naive O(N^2)
  all-pairs scan.  Adjacency is stored both as ordered lists (BFS and
  flood iteration order must stay deterministic) and as frozen sets for
  an O(1) :meth:`TopologySnapshot.has_edge`.
* **Per-source BFS memoisation.**  A snapshot is immutable, so one full
  O(V+E) traversal per source serves every subsequent ``shortest_path``,
  ``hop_distance``, ``bfs_levels``, flood and reachability query against
  that snapshot.  Traffic bursts within a topology quantum therefore pay
  for BFS once and do dict lookups afterwards.
* **Incremental snapshot pipeline.**  Long runs alternate movement with
  pauses (random waypoint, Table 1), so most quanta change nothing.
  :class:`TopologyService` diffs node state against the previous snapshot
  each refresh: an *empty* delta returns the previous snapshot object
  unchanged — warm BFS cache and all; a *small* delta (at most
  ``delta_fraction`` of the nodes) applies :meth:`TopologySnapshot.from_delta`,
  a copy-on-write update that re-buckets only the moved/churned nodes in
  the spatial grid, recomputes only their candidate edges (insertion-order
  rank kept, so traversal stays bit-identical to a from-scratch build) and
  retains every memoised BFS tree whose connected component no edge change
  touched — each retention guarded by a per-component edge fingerprint.
  Large deltas fall back to the from-scratch build, which stays the
  worst-case cost.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import TopologyError
from repro.mobility.terrain import Point
from repro.net import soa

__all__ = ["TopologySnapshot", "TopologyService"]

# Population below which a *full* (unbounded) BFS runs on the dict
# adjacency even when a CSR view exists.  The dict traversal is faster
# per source at any scale; the CSR traversal only pays off when it saves
# materialising the adjacency from the CSR on a large snapshot that will
# likely see a single routing query before the next rebuild.
_FULL_BFS_CSR_MIN = 4096


class TopologySnapshot:
    """Immutable connectivity graph at one instant.

    Parameters
    ----------
    positions:
        Mapping of *online* node id to position.  Offline nodes simply do
        not appear: they can neither send, receive, nor forward.
    radio_range:
        Disc-model communication range in metres.
    edge_filter:
        Optional symmetric predicate ``(node_a, node_b, pos_a, pos_b) ->
        bool``; edges it rejects are removed *after* the normal build
        (fault-injected partitions).  ``None`` — the default — leaves the
        hot build path untouched.
    """

    def __init__(
        self,
        positions: Dict[int, Point],
        radio_range: float,
        edge_filter: Optional[
            Callable[[int, int, Point, Point], bool]
        ] = None,
        position_arrays=None,
    ) -> None:
        # ArrayPositions (the ledger's big-delta output) is already an
        # immutable snapshot-safe mapping: copying it into a dict would
        # materialise one Point per node, the very cost it exists to skip.
        if isinstance(positions, soa.ArrayPositions):
            self.positions = positions
        else:
            self.positions = dict(positions)
        self.radio_range = float(radio_range)
        self._edge_filter = edge_filter
        self._cell = self.radio_range if self.radio_range > 0 else 1.0
        # node -> hash of its ordered neighbour list, filled lazily by
        # component_fingerprint / from_delta verification.  Never inherited
        # across snapshots: each snapshot fingerprints its own actual lists.
        self._edge_fp: Dict[int, int] = {}
        # source -> (levels, parents, items, prefix) of one full BFS, filled
        # lazily: items is levels as a list and prefix[d] counts nodes at
        # depth <= d, so depth-limited queries are a single list slice.
        self._bfs_cache: Dict[
            int,
            Tuple[Dict[int, int], Dict[int, int], List[Tuple[int, int]], List[int]],
        ] = {}
        # source -> ((levels, parents, items, prefix), complete) of a
        # depth-bounded vectorized BFS; levels <= the bound are identical
        # to the full traversal's, so TTL floods reuse them without ever
        # walking the whole graph.
        self._bfs_partial: Dict[int, Tuple[tuple, bool]] = {}
        # Compressed sparse-row view of the adjacency (vectorized builds
        # only); BFS traverses it in array ops instead of the dict lists.
        self._csr = None
        if (
            soa.HAVE_NUMPY
            and len(self.positions) >= soa.BUILD_MIN_NODES
            and soa.soa_enabled()
        ):
            self._csr = soa.build_csr(
                self.positions, self.radio_range, position_arrays
            )
        if self._csr is not None:
            # The dict-of-lists adjacency, the grid and the frozen
            # neighbour sets all materialise lazily: a regime that
            # rebuilds every quantum (everybody moving) never needs any
            # of them, and from_delta/has_edge build them on first touch.
            self._adjacency = None
            self._grid = None
            self._neighbor_sets = None
        else:
            self._adjacency = {node: [] for node in self.positions}
            self._neighbor_sets = {}
            # The spatial-hash grid is kept after the build so from_delta
            # can re-bucket moved nodes without rescanning the population.
            self._grid = {}
            self._build_adjacency()
        if edge_filter is not None:
            self._apply_edge_filter()
            self._csr = None  # filtered lists no longer match the CSR view

    # ------------------------------------------------------------------
    # Lazy companions of the adjacency (vectorized builds defer them)
    # ------------------------------------------------------------------
    @property
    def _adjacency(self) -> Dict[int, List[int]]:
        adjacency = self._adjacency_store
        if adjacency is None:
            adjacency = self._adjacency_store = soa.adjacency_from_csr(self._csr)
        return adjacency

    @_adjacency.setter
    def _adjacency(self, value) -> None:
        self._adjacency_store = value

    @property
    def _grid(self) -> Dict[Tuple[int, int], List[Tuple[int, Point]]]:
        grid = self._grid_store
        if grid is None:
            cell = self._cell
            grid = self._grid_store = {}
            for node, pos in self.positions.items():
                key = (math.floor(pos.x / cell), math.floor(pos.y / cell))
                grid.setdefault(key, []).append((node, pos))
        return grid

    @_grid.setter
    def _grid(self, value) -> None:
        self._grid_store = value

    @property
    def _neighbor_sets(self) -> Dict[int, frozenset]:
        sets = self._sets_store
        if sets is None:
            sets = self._sets_store = {
                node: frozenset(neighbors)
                for node, neighbors in self._adjacency.items()
            }
        return sets

    @_neighbor_sets.setter
    def _neighbor_sets(self, value) -> None:
        self._sets_store = value

    def _apply_edge_filter(self) -> None:
        """Drop edges the filter rejects (fault-injected partitions).

        Runs as a separate post-pass so the unfiltered build — the hot
        path every normal refresh takes — pays nothing.  In-place
        filtering preserves the registration-rank neighbour order, so
        BFS traversal on the surviving graph matches what a from-scratch
        build of the cut topology would produce.  The filter must be
        symmetric in its endpoints or the adjacency becomes directed.
        """
        allowed = self._edge_filter
        positions = self.positions
        adjacency = self._adjacency
        neighbor_sets = self._neighbor_sets
        for node, neighbors in adjacency.items():
            pos = positions[node]
            kept = [
                other
                for other in neighbors
                if allowed(node, other, pos, positions[other])
            ]
            if len(kept) != len(neighbors):
                adjacency[node] = kept
                neighbor_sets[node] = frozenset(kept)

    def _build_adjacency(self) -> None:
        # Uniform spatial hash: with cell size == radio range, any node
        # within range of a cell lies in that cell's 3x3 neighbourhood.
        cell = self._cell
        grid = self._grid
        for node, pos in self.positions.items():
            key = (math.floor(pos.x / cell), math.floor(pos.y / cell))
            grid.setdefault(key, []).append((node, pos))
        adjacency = self._adjacency
        limit_sq = self.radio_range * self.radio_range
        # Half-neighbourhood offsets: each unordered cell pair is visited
        # exactly once; same-cell pairs are handled by the i<j inner loop.
        half = ((1, 0), (0, 1), (1, 1), (-1, 1))
        for (cx, cy), members in grid.items():
            for index, (node_a, pos_a) in enumerate(members):
                for node_b, pos_b in members[index + 1:]:
                    dx = pos_a.x - pos_b.x
                    dy = pos_a.y - pos_b.y
                    if dx * dx + dy * dy <= limit_sq:
                        adjacency[node_a].append(node_b)
                        adjacency[node_b].append(node_a)
            for ox, oy in half:
                other = grid.get((cx + ox, cy + oy))
                if other is None:
                    continue
                for node_a, pos_a in members:
                    for node_b, pos_b in other:
                        dx = pos_a.x - pos_b.x
                        dy = pos_a.y - pos_b.y
                        if dx * dx + dy * dy <= limit_sq:
                            adjacency[node_a].append(node_b)
                            adjacency[node_b].append(node_a)
        # The naive all-pairs build emitted each neighbour list sorted by
        # node insertion order; restore that order so BFS traversal (and
        # therefore every routing/flood decision) is bit-identical.
        order = {node: rank for rank, node in enumerate(self.positions)}
        for neighbors in adjacency.values():
            neighbors.sort(key=order.__getitem__)
        self._neighbor_sets = {
            node: frozenset(neighbors) for node, neighbors in adjacency.items()
        }

    # ------------------------------------------------------------------
    # Incremental construction
    # ------------------------------------------------------------------
    @classmethod
    def from_delta(
        cls,
        prev: "TopologySnapshot",
        positions: Dict[int, Point],
        changed: Sequence[int],
        verify_retention: bool = False,
        order: Optional[Dict[int, int]] = None,
    ) -> "TopologySnapshot":
        """Build the snapshot for ``positions`` by patching ``prev``.

        ``changed`` lists every node whose state differs from ``prev``:
        moved (position changed), appeared (came online) or departed (went
        offline).  All other nodes must be bit-identical in both snapshots.
        ``positions`` must iterate in the same registration order a
        from-scratch build would use.

        The update is copy-on-write: ``prev`` is never mutated, and every
        grid cell, adjacency list and frozen neighbour set the delta does
        not touch is shared between the two snapshots.  BFS trees of
        ``prev`` whose connected component no edge change touched are
        carried over; with ``verify_retention`` each carried tree is
        re-checked against a per-component edge fingerprint computed from
        the actual neighbour lists of both snapshots (used by the property
        tests; a mismatch raises :class:`TopologyError`).

        ``order`` may supply the registration-rank map (``{node: rank}``
        for ``enumerate(positions)``); callers that refresh repeatedly over
        a stable population pass a cached one to skip the O(N) rebuild.
        """
        snap = cls.__new__(cls)
        snap.positions = positions
        snap.radio_range = prev.radio_range
        cell = snap._cell = prev._cell
        snap._edge_filter = None  # delta path is only taken unfiltered
        snap._edge_fp = {}
        snap._bfs_cache = {}
        snap._bfs_partial = {}
        snap._csr = None  # patched lists live in the dicts, not the arrays

        grid = dict(prev._grid)
        adjacency = dict(prev._adjacency)
        neighbor_sets = dict(prev._neighbor_sets)
        owned_cells: Set[Tuple[int, int]] = set()
        owned_lists: Set[int] = set()
        changed_set = set(changed)
        touched = set(changed_set)

        def own_cell(key: Tuple[int, int]) -> List[Tuple[int, Point]]:
            members = grid.get(key)
            if members is None:
                members = grid[key] = []
                owned_cells.add(key)
            elif key not in owned_cells:
                members = grid[key] = list(members)
                owned_cells.add(key)
            return members

        def own_list(node: int) -> List[int]:
            neighbors = adjacency[node]
            if node not in owned_lists:
                neighbors = adjacency[node] = list(neighbors)
                owned_lists.add(node)
            return neighbors

        # Phase 1: detach every changed node that was online in prev — pull
        # it out of its old grid cell and out of its neighbours' lists.  A
        # node that merely *moved* keeps its dict keys in place (the stale
        # values are overwritten below), so key order is disturbed only
        # when a node appears — the one case that needs a re-key pass.
        rekey = False
        for node in changed:
            old_pos = prev.positions.get(node)
            if old_pos is None:
                rekey = rekey or node in positions  # newly online
                continue
            own_cell(
                (math.floor(old_pos.x / cell), math.floor(old_pos.y / cell))
            ).remove((node, old_pos))
            for neighbor in prev._adjacency[node]:
                if neighbor in changed_set:
                    continue  # rebuilt (or dropped) wholesale below
                own_list(neighbor).remove(node)
                touched.add(neighbor)
            if node not in positions:  # departed: deletion keeps the
                del adjacency[node]    # remaining keys' relative order
                del neighbor_sets[node]

        # Phase 2: attach every changed node that is online now.  The grid
        # holds all unchanged nodes plus previously attached changed ones,
        # so each changed-changed pair is discovered exactly once (by the
        # later of the two attachments).  Neighbour lists stay sorted by
        # registration rank, which keeps BFS traversal bit-identical to a
        # from-scratch build.
        if order is None:
            order = {node: rank for rank, node in enumerate(positions)}
        rank_of = order.__getitem__
        limit_sq = snap.radio_range * snap.radio_range
        for node in changed:
            pos = positions.get(node)
            if pos is None:
                continue  # went offline
            cell_x = math.floor(pos.x / cell)
            cell_y = math.floor(pos.y / cell)
            found: List[int] = []
            for offset_x in (-1, 0, 1):
                for offset_y in (-1, 0, 1):
                    members = grid.get((cell_x + offset_x, cell_y + offset_y))
                    if not members:
                        continue
                    for other, other_pos in members:
                        dx = pos.x - other_pos.x
                        dy = pos.y - other_pos.y
                        if dx * dx + dy * dy <= limit_sq:
                            found.append(other)
            found.sort(key=rank_of)
            adjacency[node] = found
            owned_lists.add(node)
            for other in found:
                insort(own_list(other), node, key=rank_of)
                touched.add(other)
            own_cell((cell_x, cell_y)).append((node, pos))

        for key in owned_cells:
            if not grid[key]:
                del grid[key]
        for node in touched:
            if node in adjacency:
                neighbor_sets[node] = frozenset(adjacency[node])

        snap._grid = grid
        if rekey:
            # A from-scratch build inserts keys in ``positions`` order, and
            # downstream set/dict iteration (seed picking in
            # connected_components, for one) is sensitive to insertion
            # order under hash collisions.  Moves and departures preserve
            # key order in place, but an appeared node lands at the end of
            # both dicts, so rebuild them in registration order.  O(N)
            # dict rebuilds; the values (lists/frozensets) stay shared.
            snap._adjacency = {node: adjacency[node] for node in positions}
            snap._neighbor_sets = {
                node: neighbor_sets[node] for node in positions
            }
        else:
            snap._adjacency = adjacency
            snap._neighbor_sets = neighbor_sets

        # Phase 3: carry over BFS trees from components no edge change
        # touched.  ``touched`` is exactly the set of nodes whose neighbour
        # list changed, so a tree is still valid iff it is disjoint from it
        # (new nodes attach only to touched neighbours, hence stay
        # unreachable from retained sources).
        for source, tree in prev._bfs_cache.items():
            levels = tree[0]
            if len(touched) <= len(levels):
                dirty = any(node in levels for node in touched)
            else:
                dirty = any(node in touched for node in levels)
            if dirty:
                continue
            if verify_retention and prev.component_fingerprint(
                source
            ) != snap._fingerprint_over(levels):
                raise TopologyError(
                    f"retained BFS tree from {source} fails the component "
                    "edge-fingerprint check (copy-on-write aliasing bug?)"
                )
            snap._bfs_cache[source] = tree
        return snap

    def _fingerprint_over(self, nodes: Iterable[int]) -> int:
        """XOR of per-node edge fingerprints over ``nodes``.

        Each per-node fingerprint hashes the node id plus its ordered
        neighbour list, computed from this snapshot's actual adjacency (and
        memoised per node), so equal component fingerprints mean every
        listed node has an identical neighbourhood in both snapshots.
        """
        fingerprint = 0
        edge_fp = self._edge_fp
        adjacency = self._adjacency
        for node in nodes:
            node_fp = edge_fp.get(node)
            if node_fp is None:
                node_fp = edge_fp[node] = hash((node, tuple(adjacency[node])))
            fingerprint ^= node_fp
        return fingerprint

    def component_fingerprint(self, node: int) -> int:
        """Edge fingerprint of the connected component containing ``node``.

        Two snapshots agree on a component's fingerprint iff every member
        has an identical ordered neighbour list in both (modulo hash
        collisions), which is the retention condition for carrying a
        memoised BFS tree across an incremental update.
        """
        levels, _, _, _ = self._bfs_from(node)
        return self._fingerprint_over(levels)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _key_set(self) -> Set[int]:
        # CPython presizes a set built from a dict differently from one
        # built from a generic iterable, and the internal table layout
        # leaks through iteration order once elements are discarded
        # (connected_components' seed picking, for one).  Route every
        # positions mapping through a dict so array-backed and plain-dict
        # snapshots produce byte-identical set behaviour.
        positions = self.positions
        if type(positions) is not dict:
            positions = dict.fromkeys(positions)
        return set(positions)

    @property
    def nodes(self) -> Set[int]:
        """Identifiers of the online nodes in this snapshot."""
        return self._key_set()

    def __contains__(self, node: int) -> bool:
        return node in self.positions

    def neighbors(self, node: int) -> List[int]:
        """Online one-hop neighbours of ``node``."""
        try:
            return list(self._adjacency[node])
        except KeyError:
            raise TopologyError(f"node {node!r} is not online in this snapshot") from None

    def has_edge(self, node_a: int, node_b: int) -> bool:
        """O(1) check whether a radio link ``node_a -- node_b`` exists.

        Returns ``False`` (rather than raising) when either endpoint is
        not online in this snapshot, so route-liveness scans need no
        separate membership pass.
        """
        sets = self._sets_store
        if sets is None:
            sets = self._neighbor_sets  # materialise once, then hit the store
        members = sets.get(node_a)
        return members is not None and node_b in members

    def degree(self, node: int) -> int:
        """Number of one-hop neighbours of ``node``."""
        return len(self.neighbors(node))

    def _bfs_from(
        self, source: int
    ) -> Tuple[Dict[int, int], Dict[int, int], List[Tuple[int, int]], List[int]]:
        """Full BFS tree from ``source``, computed once per snapshot."""
        cached = self._bfs_cache.get(source)
        if cached is not None:
            return cached
        # Both traversals produce the same quadruple bit-for-bit (the CSR
        # preserves registration-rank neighbour order), so the choice is
        # purely a speed call: the dict BFS is faster per source, but on a
        # big vectorized snapshot whose adjacency was never materialised
        # the array traversal avoids paying adjacency_from_csr for what is
        # typically a single routing query.
        if (
            self._csr is not None
            and self._adjacency_store is None
            and len(self.positions) >= _FULL_BFS_CSR_MIN
        ):
            cached = soa.bfs_from_csr(self._csr, source)
            self._bfs_cache[source] = cached
            return cached
        # Level-synchronous BFS: same discovery order as a FIFO queue, but
        # without per-node deque and depth-lookup overhead.
        levels: Dict[int, int] = {source: 0}
        parents: Dict[int, int] = {source: source}
        adjacency = self._adjacency
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            next_frontier: List[int] = []
            for current in frontier:
                for neighbor in adjacency[current]:
                    if neighbor not in levels:
                        levels[neighbor] = depth
                        parents[neighbor] = current
                        next_frontier.append(neighbor)
            frontier = next_frontier
        items = list(levels.items())
        # items is in nondecreasing-depth order; prefix[d] = |{depth <= d}|.
        prefix: List[int] = []
        for index, (_, depth) in enumerate(items):
            while len(prefix) <= depth:
                prefix.append(index)
            prefix[depth] = index + 1
        cached = (levels, parents, items, prefix)
        self._bfs_cache[source] = cached
        return cached

    @property
    def bfs_cache_size(self) -> int:
        """Number of sources whose BFS tree is currently memoised."""
        return len(self._bfs_cache)

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """Hop-minimal path from ``source`` to ``target`` (inclusive).

        Returns ``None`` when the nodes are partitioned, ``[source]`` when
        ``source == target``.
        """
        if source not in self.positions:
            raise TopologyError(f"source node {source!r} is not online")
        if target not in self.positions:
            return None
        if source == target:
            return [source]
        levels, parents, _, _ = self._bfs_from(source)
        if target not in levels:
            return None
        return self._walk_back(parents, source, target)

    @staticmethod
    def _walk_back(parents: Dict[int, int], source: int, target: int) -> List[int]:
        path = [target]
        node = target
        while node != source:
            node = parents[node]
            path.append(node)
        path.reverse()
        return path

    def hop_distance(self, source: int, target: int) -> Optional[int]:
        """Number of hops on a shortest path, or ``None`` if unreachable."""
        if source not in self.positions:
            raise TopologyError(f"source node {source!r} is not online")
        if target not in self.positions:
            return None
        levels, _, _, _ = self._bfs_from(source)
        return levels.get(target)

    def bfs_levels(self, source: int, max_depth: Optional[int] = None) -> Dict[int, int]:
        """Hop distance from ``source`` for every node within ``max_depth``.

        The source itself appears with depth 0.  This drives TTL-limited
        flooding: nodes at depth ``d <= TTL`` hear the flood.  The returned
        dict preserves BFS discovery order and is a fresh copy the caller
        may mutate.
        """
        if source not in self.positions:
            raise TopologyError(f"source node {source!r} is not online")
        if (
            self._csr is not None
            and max_depth is not None
            and max_depth >= 0
            and source not in self._bfs_cache
        ):
            # Depth-bounded vectorized BFS: a TTL flood only needs the
            # first few levels, so skip the far side of the graph.  The
            # bounded run is reused while it covers the requested depth;
            # ``complete`` marks traversals that exhausted the component
            # before the bound and therefore cover any depth.
            entry = self._bfs_partial.get(source)
            if entry is None or not (entry[1] or len(entry[0][3]) - 1 >= max_depth):
                quad = soa.bfs_from_csr(self._csr, source, max_depth)
                entry = (quad, len(quad[3]) - 1 < max_depth)
                self._bfs_partial[source] = entry
            levels, _, items, prefix = entry[0]
            if max_depth >= len(prefix) - 1:
                return dict(levels)
            return dict(items[: prefix[max_depth]])
        levels, _, items, prefix = self._bfs_from(source)
        # items is in BFS discovery order, i.e. nondecreasing depth, so the
        # depth limit selects a precomputed prefix of the traversal.
        if max_depth is None or max_depth >= len(prefix) - 1:
            return dict(levels)
        if max_depth < 0:
            max_depth = 0
        return dict(items[: prefix[max_depth]])

    def connected_components(self) -> List[Set[int]]:
        """Partition of the online nodes into connected components."""
        remaining = self._key_set()
        components: List[Set[int]] = []
        while remaining:
            seed = next(iter(remaining))
            component = set(self.bfs_levels(seed))
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """``True`` when all online nodes form a single component."""
        if not self.positions:
            return True
        return len(self.connected_components()) == 1

    def edge_count(self) -> int:
        """Number of undirected radio links in the snapshot."""
        if self._adjacency_store is None and self._csr is not None:
            return self._csr.neighbors.shape[0] // 2
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2


class TopologyService:
    """Samples node state into cached :class:`TopologySnapshot` objects.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time.
    node_states:
        Callable returning the *current* iterable of ``(node_id, position,
        online)`` triples.  The network layer supplies this from its node
        registry; the position of an offline node is never read (and may be
        ``None``).
    radio_range:
        Disc-model communication range in metres.
    quantum:
        Snapshots are reused for this many seconds.  With 20 m/s peak node
        speed, a 1 s quantum bounds position error by 20 m — well under the
        250 m radio range.

    Refreshes (new bucket, or churn inside the current one) diff the fresh
    node state against the previous snapshot.  No change reuses the
    previous snapshot object outright; a delta no larger than
    ``delta_fraction`` of the population (with an absolute floor of
    ``delta_floor`` nodes) patches it via
    :meth:`TopologySnapshot.from_delta`; anything larger rebuilds from
    scratch.  ``incremental = False`` disables both fast paths (every
    refresh rebuilds), which the benchmarks use as the baseline.

    Counters: ``snapshots_built`` counts from-scratch builds,
    ``incremental_updates`` delta patches, ``snapshots_reused`` unchanged
    reuses, ``bfs_trees_retained`` memoised BFS trees carried across
    patches, and ``invalidations`` explicit churn/invalidate notices.
    """

    delta_fraction = 0.25
    delta_floor = 4

    def __init__(
        self,
        clock: Callable[[], float],
        node_states: Callable[[], Iterable[Tuple[int, Optional[Point], bool]]],
        radio_range: float,
        quantum: float = 1.0,
        delta_source=None,
    ) -> None:
        if radio_range <= 0:
            raise TopologyError(f"radio_range must be positive, got {radio_range!r}")
        if quantum <= 0:
            raise TopologyError(f"quantum must be positive, got {quantum!r}")
        self._clock = clock
        self._node_states = node_states
        # Optional SoA position ledger (repro.net.soa.SoAPositionLedger):
        # when set, refreshes pull (positions, changed) straight from its
        # arrays instead of iterating node_states and diffing per node.
        self._delta_source = delta_source
        self.radio_range = float(radio_range)
        self.quantum = float(quantum)
        self._cached: Optional[TopologySnapshot] = None
        self._cached_bucket: Optional[int] = None
        self._dirty = False
        # Registration-rank map reused across delta patches while the
        # online membership is stable (invariant: non-None only when its
        # keys equal the cached snapshot's).  Ranks depend solely on
        # registry order, so consecutive pause-heavy refreshes skip the
        # O(N) rebuild.
        self._order: Optional[Dict[int, int]] = None
        self.incremental = True
        self.verify_retention = False
        # Fault-injected edge suppression (network partitions).  Callers
        # that change this must call invalidate() in the same instant —
        # the fast reuse path only checks filter *identity*, so assign a
        # stable callable (the injector keeps one bound method around).
        self.edge_filter: Optional[
            Callable[[int, int, Point, Point], bool]
        ] = None
        self.snapshots_built = 0
        self.invalidations = 0
        self.snapshots_reused = 0
        self.incremental_updates = 0
        self.bfs_trees_retained = 0

    def current(self) -> TopologySnapshot:
        """Return the snapshot for the current time bucket."""
        now = self._clock()
        bucket = int(math.floor(now / self.quantum))
        cached = self._cached
        if cached is not None and bucket == self._cached_bucket and not self._dirty:
            return cached
        if self._delta_source is not None:
            return self._refresh_from_ledger(now, bucket, cached)
        positions = {
            node_id: position
            for node_id, position, online in self._node_states()
            if online
        }
        self._cached_bucket = bucket
        self._dirty = False
        if (
            cached is not None
            and self.incremental
            and cached._edge_filter is self.edge_filter
        ):
            old = cached.positions
            # The network's position ledger hands back the same Point
            # object while a node's validity window covers the refresh, so
            # the common unmoved case short-circuits on identity.
            changed = [
                node
                for node, pos in positions.items()
                if (prev_pos := old.get(node)) is None
                or (pos is not prev_pos and pos != prev_pos)
            ]
            if len(old) != len(positions) or changed:
                changed.extend(node for node in old if node not in positions)
            if not changed:
                self.snapshots_reused += 1
                return cached
            limit = max(self.delta_floor, int(len(positions) * self.delta_fraction))
            # Delta patching is unfiltered-only: a filtered base snapshot
            # has edges physically missing that the patch math would need.
            if len(changed) <= limit and self.edge_filter is None:
                order = self._order
                if order is None or old.keys() != positions.keys():
                    order = self._order = {
                        node: rank for rank, node in enumerate(positions)
                    }
                snap = TopologySnapshot.from_delta(
                    cached, positions, changed, self.verify_retention, order
                )
                self.incremental_updates += 1
                self.bfs_trees_retained += len(snap._bfs_cache)
                self._cached = snap
                return snap
        self._cached = TopologySnapshot(
            positions, self.radio_range, edge_filter=self.edge_filter
        )
        self.snapshots_built += 1
        self._order = None
        return self._cached

    def _refresh_from_ledger(
        self, now: float, bucket: int, cached: Optional[TopologySnapshot]
    ) -> TopologySnapshot:
        """Refresh via the SoA position ledger.

        Mirrors the scalar decision tree of :meth:`current` exactly —
        reuse on an empty delta, patch on a small one, rebuild otherwise
        — with the change detection done once in the ledger's arrays
        instead of per node here.
        """
        positions, changed = self._delta_source.refresh(now)
        self._cached_bucket = bucket
        self._dirty = False
        if (
            cached is not None
            and self.incremental
            and cached._edge_filter is self.edge_filter
        ):
            if not changed:
                self.snapshots_reused += 1
                return cached
            limit = max(self.delta_floor, int(len(positions) * self.delta_fraction))
            if len(changed) <= limit and self.edge_filter is None:
                order = self._order
                if order is None or cached.positions.keys() != positions.keys():
                    order = self._order = {
                        node: rank for rank, node in enumerate(positions)
                    }
                # The ledger never mutates a handed-out dict (it copies on
                # change), so the snapshot may hold ``positions`` directly.
                snap = TopologySnapshot.from_delta(
                    cached, positions, changed, self.verify_retention, order
                )
                self.incremental_updates += 1
                self.bfs_trees_retained += len(snap._bfs_cache)
                self._cached = snap
                return snap
        if isinstance(positions, soa.ArrayPositions):
            position_arrays = positions.arrays()
        else:
            position_arrays = self._delta_source.online_arrays()
        self._cached = TopologySnapshot(
            positions,
            self.radio_range,
            edge_filter=self.edge_filter,
            position_arrays=position_arrays,
        )
        self.snapshots_built += 1
        self._order = None
        return self._cached

    def note_churn(self, node_id: int) -> None:
        """Record that ``node_id`` flipped online/offline.

        Marks the cached snapshot stale so the next :meth:`current` call
        re-diffs node state even inside the current quantum, but keeps the
        snapshot itself as the base for a delta patch — unlike
        :meth:`invalidate`, which forces a from-scratch rebuild.
        """
        self._dirty = True
        self.invalidations += 1

    def invalidate(self) -> None:
        """Drop the cached snapshot entirely (next refresh rebuilds)."""
        self._cached = None
        self._cached_bucket = None
        self._dirty = False
        self._order = None
        self.invalidations += 1

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for result reporting (CLI footer, benchmarks)."""
        return {
            "snapshots_built": self.snapshots_built,
            "snapshots_reused": self.snapshots_reused,
            "incremental_updates": self.incremental_updates,
            "bfs_trees_retained": self.bfs_trees_retained,
            "invalidations": self.invalidations,
        }
