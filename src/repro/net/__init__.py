"""Wireless network substrate: topology, routing, links, flooding."""

from repro.net.link import LinkModel
from repro.net.message import Message, next_message_id
from repro.net.network import Network, TrafficObserver
from repro.net.node import NetworkNode
from repro.net.routing import CachingRouter, Router, ShortestPathRouter
from repro.net.topology import TopologyService, TopologySnapshot

__all__ = [
    "Message",
    "next_message_id",
    "LinkModel",
    "Network",
    "TrafficObserver",
    "NetworkNode",
    "Router",
    "ShortestPathRouter",
    "CachingRouter",
    "TopologySnapshot",
    "TopologyService",
]
