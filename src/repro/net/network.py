"""The simulated multi-hop wireless network.

This module glues the topology, link and node layers into the two
primitives every consistency strategy in the paper uses:

* :meth:`Network.unicast` — multi-hop delivery along a shortest path
  (the substitute for DSR routing, see DESIGN.md);
* :meth:`Network.flood` — TTL-limited flooding, used for ``INVALIDATION``
  and ``POLL`` broadcasts.

Traffic accounting counts *per-hop transmissions*: a unicast over 3 hops
costs 3 transmissions, a flood costs one transmission per forwarding node.
That is the quantity the paper's "network traffic" figures integrate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Tuple

from repro.errors import RoutingError, TopologyError
from repro.mobility.terrain import Point
from repro.net.link import LinkModel
from repro.net.message import Message
from repro.net.node import NetworkNode
from repro.net.routing import Router, ShortestPathRouter
from repro.net import soa
from repro.net.topology import TopologyService, TopologySnapshot
from repro.obs.events import InvalidationReceived, NodeOffline, NodeOnline
from repro.sim.engine import Simulator

__all__ = ["Network", "TrafficObserver"]


class TrafficObserver(Protocol):
    """Sink for per-hop transmission accounting."""

    def record_transmissions(self, message: Message, transmissions: int) -> None:
        """Record that ``message`` caused ``transmissions`` hop transmissions."""


class _NullTraffic:
    """Default observer that discards all accounting."""

    def record_transmissions(self, message: Message, transmissions: int) -> None:
        return None


class Network:
    """Multi-hop wireless network over a dynamic disc-model topology.

    Parameters
    ----------
    sim:
        The discrete-event simulator (clock + scheduling).
    radio_range:
        Disc-model communication range in metres (``C_Range`` in Table 1).
    link:
        Per-hop delay/loss model; a lossless 2 Mbps default when omitted.
    traffic:
        Observer receiving per-hop transmission counts; optional.
    topology_quantum:
        Seconds for which a computed topology snapshot is reused.
    """

    def __init__(
        self,
        sim: Simulator,
        radio_range: float = 250.0,
        link: Optional[LinkModel] = None,
        traffic: Optional[TrafficObserver] = None,
        topology_quantum: float = 1.0,
        router: Optional[Router] = None,
    ) -> None:
        self.sim = sim
        self.link = link if link is not None else LinkModel()
        self.router: Router = router if router is not None else ShortestPathRouter()
        self.traffic: TrafficObserver = traffic if traffic is not None else _NullTraffic()
        self._nodes: Dict[int, NetworkNode] = {}
        # node id -> (position, valid_until): positions are re-sampled from
        # the mobility model only once their validity window expires, and
        # the *same* Point object is served until then so the topology
        # service can detect unmoved nodes by identity.
        self._position_ledger: Dict[int, Tuple[Point, float]] = {}
        # Struct-of-arrays core: with numpy installed (the ``perf`` extra)
        # and REPRO_SOA != 0, positions/online flags/validity windows live
        # in contiguous arrays and refreshes run vectorized.  Both cores
        # produce bit-identical snapshots, routes and digests.
        self._soa_ledger = soa.SoAPositionLedger() if soa.soa_enabled() else None
        #: Which per-quantum core this network runs: "vectorized"/"scalar".
        self.core = "vectorized" if self._soa_ledger is not None else "scalar"
        self.topology = TopologyService(
            clock=lambda: sim.now,
            node_states=self._node_states,
            radio_range=radio_range,
            quantum=topology_quantum,
            delta_source=self._soa_ledger,
        )
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_undeliverable = 0
        # Optional fault-injection hooks (repro.faults.FaultInjector).
        # None — the default — keeps every code path byte-identical to a
        # fault-free build: no extra draws, no extra scheduled events.
        self.faults = None

    # ------------------------------------------------------------------
    # Node registry
    # ------------------------------------------------------------------
    def register(self, node: NetworkNode) -> None:
        """Add ``node`` to the network.  Node ids must be unique.

        Registration binds the node's state listener so that online/offline
        flips mark the cached topology snapshot stale immediately —
        otherwise unicasts for the rest of the quantum could route through
        a node that just went offline.  The churn notice feeds the
        incremental delta path: the next refresh patches the previous
        snapshot rather than rebuilding it from scratch.
        """
        if node.node_id in self._nodes:
            raise TopologyError(f"node id {node.node_id!r} already registered")
        self._nodes[node.node_id] = node
        if self._soa_ledger is not None:
            self._soa_ledger.add(node)
        node.bind_state_listener(self._on_node_state_change)

    def _on_node_state_change(self, node: NetworkNode) -> None:
        if self._soa_ledger is not None:
            self._soa_ledger.note_state(node)
        self.topology.note_churn(node.node_id)
        trace = self.sim.trace
        if trace.enabled:
            if node.online:
                trace.emit(NodeOnline(time=self.sim.now, node=node.node_id))
            else:
                trace.emit(NodeOffline(time=self.sim.now, node=node.node_id))

    def node(self, node_id: int) -> NetworkNode:
        """Look up a registered node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node id {node_id!r}") from None

    @property
    def node_ids(self) -> List[int]:
        """All registered node ids, in registration order."""
        return list(self._nodes)

    def _node_states(self) -> Iterable[Tuple[int, Optional[Point], bool]]:
        now = self.sim.now
        ledger = self._position_ledger
        for node_id, node in self._nodes.items():
            if not node.online:
                # Offline nodes are filtered out by the topology service,
                # so the position is never read: skip the mobility model.
                yield node_id, None, False
                continue
            entry = ledger.get(node_id)
            if entry is not None and now <= entry[1]:
                yield node_id, entry[0], True
                continue
            position = node.current_position()
            valid_until = node.position_valid_until()
            if valid_until > now:
                ledger[node_id] = (position, valid_until)
            else:
                ledger.pop(node_id, None)
            yield node_id, position, True

    def snapshot(self) -> TopologySnapshot:
        """Connectivity graph at the current instant."""
        return self.topology.current()

    # ------------------------------------------------------------------
    # Unicast
    # ------------------------------------------------------------------
    def unicast(self, source: int, target: int, message: Message) -> bool:
        """Send ``message`` from ``source`` to ``target`` along a shortest path.

        Returns ``True`` when a route exists and delivery was scheduled
        (delivery can still fail if the target goes offline in flight or a
        hop is lost).  Returns ``False`` when the nodes are partitioned or
        either endpoint is offline.
        """
        self.messages_sent += 1
        sender = self.node(source)
        if not sender.online:
            self.messages_undeliverable += 1
            return False
        snapshot = self.snapshot()
        if source not in snapshot or target not in snapshot:
            self.messages_undeliverable += 1
            return False
        path = self.router.find_route(snapshot, source, target, self.sim.now)
        if path is None:
            self.messages_undeliverable += 1
            return False
        hops = len(path) - 1
        if hops == 0:
            # Local delivery: no radio transmission involved.  Deliveries
            # are fire-and-forget, so they ride the pooled fast path.
            self.sim.post(0.0, self._deliver, target, message)
            return True
        faults = self.faults
        transmissions = 0
        for hop_index in range(hops):
            transmissions += 1
            self.node(path[hop_index]).on_transmit(message)
            self.node(path[hop_index + 1]).on_receive(message)
            if self.link.hop_is_lost() or (
                faults is not None
                and faults.unicast_hop_lost(path[hop_index], path[hop_index + 1])
            ):
                self.traffic.record_transmissions(message, transmissions)
                self.messages_undeliverable += 1
                return False
        self.traffic.record_transmissions(message, transmissions)
        delay = self.link.path_delay(message.size_bytes, hops)
        if faults is not None:
            delay += faults.extra_delay()
            if faults.duplicate():
                # Deliver a second copy one hop-delay behind the first:
                # protocols must treat repeated messages as idempotent.
                self.sim.post(
                    delay + self.link.hop_delay(message.size_bytes),
                    self._deliver,
                    target,
                    message,
                )
        self.sim.post(delay, self._deliver, target, message)
        return True

    def route_hops(self, source: int, target: int) -> Optional[int]:
        """Hop count of the current shortest route, or ``None`` if none."""
        snapshot = self.snapshot()
        if source not in snapshot or target not in snapshot:
            return None
        return snapshot.hop_distance(source, target)

    # ------------------------------------------------------------------
    # Flooding
    # ------------------------------------------------------------------
    def flood(self, source: int, message: Message, ttl: int) -> int:
        """TTL-limited flood of ``message`` from ``source``.

        Every online node within ``ttl`` hops receives the message after a
        depth-proportional delay.  Each node that receives the flood with
        remaining TTL rebroadcasts once; the transmission count is therefore
        ``1 (source) + |nodes at depth 1 .. ttl-1|``.

        Returns the number of nodes that will receive the message.
        """
        if ttl < 0:
            raise RoutingError(f"ttl must be >= 0, got {ttl!r}")
        self.messages_sent += 1
        sender = self.node(source)
        if not sender.online or ttl == 0:
            if ttl == 0 and sender.online:
                # A TTL of 0 never leaves the sender: one wasted transmission.
                sender.on_transmit(message)
                self.traffic.record_transmissions(message, 1)
            else:
                self.messages_undeliverable += 1
            return 0
        snapshot = self.snapshot()
        if source not in snapshot:
            self.messages_undeliverable += 1
            return 0
        levels = snapshot.bfs_levels(source, max_depth=ttl)
        transmissions = 0
        hop_delay = self.link.hop_delay(message.size_bytes)
        nodes = self._nodes
        post = self.sim.post
        batch_deliver = self._deliver_batch
        # BFS discovery order is nondecreasing in depth, so recipients at
        # the same depth are contiguous: coalesce each depth level into a
        # single pooled event instead of one EventHandle per recipient.
        # Depth groups are posted in depth order, so their relative
        # sequence — and every per-node delivery inside a group — matches
        # the per-recipient schedule stream exactly.
        recipients = 0
        group: List[int] = []
        group_depth = 0
        for node_id, depth in levels.items():
            node = nodes[node_id]
            if depth == 0:
                transmissions += 1
                node.on_transmit(message)
                continue
            node.on_receive(message)
            if depth < ttl:
                transmissions += 1
                node.on_transmit(message)
            if depth != group_depth:
                if group:
                    post(group_depth * hop_delay, batch_deliver, group, message)
                group = [node_id]
                group_depth = depth
            else:
                group.append(node_id)
            recipients += 1
        if group:
            post(group_depth * hop_delay, batch_deliver, group, message)
        self.traffic.record_transmissions(message, transmissions)
        return recipients

    def flood_reach(self, source: int, ttl: int) -> List[int]:
        """Ids of nodes a flood from ``source`` with ``ttl`` would reach now."""
        snapshot = self.snapshot()
        if source not in snapshot:
            return []
        levels = snapshot.bfs_levels(source, max_depth=ttl)
        return [node_id for node_id, depth in levels.items() if depth > 0]

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver_batch(self, targets: List[int], message: Message) -> None:
        """Deliver ``message`` to every node in ``targets`` as one event.

        Semantically identical to firing one :meth:`_deliver` per target
        back-to-back at the same instant: node liveness is re-checked per
        target in order, so a delivery earlier in the batch that flips a
        later target offline is observed exactly as it was with
        per-recipient events.  Dispatching through :meth:`_deliver` keeps
        the per-target seam that fault hooks and tests override.
        """
        deliver = self._deliver
        for target in targets:
            deliver(target, message)

    def _deliver(self, target: int, message: Message) -> None:
        node = self._nodes.get(target)
        if node is None or not node.online:
            self.messages_undeliverable += 1
            return
        self.messages_delivered += 1
        trace = self.sim.trace
        if trace.enabled and message.is_invalidation:
            trace.emit(
                InvalidationReceived(
                    time=self.sim.now,
                    node=target,
                    item=getattr(message, "item_id", -1),
                    version=getattr(message, "version", -1),
                )
            )
        node.deliver(message)
