"""Base message type for everything sent over the simulated network.

Concrete protocol messages (the paper's Fig 6(a) set, queries, data
transfers) subclass :class:`Message` as frozen dataclasses, adding their own
fields.  Every message carries a size in bytes so that link transmission
delay and byte-level traffic accounting work uniformly.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import ClassVar

__all__ = ["Message", "next_message_id"]

_MESSAGE_IDS = itertools.count(1)


def next_message_id() -> int:
    """Return a process-wide unique message identifier."""
    return next(_MESSAGE_IDS)


@dataclasses.dataclass(frozen=True, slots=True)
class Message:
    """Immutable network message.

    Attributes
    ----------
    sender:
        Node identifier of the originator.
    size_bytes:
        Serialized size used for transmission delay and traffic accounting.
        Subclasses override :attr:`DEFAULT_SIZE` to set their typical size.
    msg_id:
        Unique identifier, assigned automatically.
    """

    DEFAULT_SIZE: ClassVar[int] = 64

    #: Set by invalidation-report subclasses; lets the network layer emit
    #: delivery trace events without importing the consistency package.
    is_invalidation: ClassVar[bool] = False

    sender: int
    size_bytes: int = -1  # placeholder replaced in __post_init__
    msg_id: int = dataclasses.field(default_factory=next_message_id)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            object.__setattr__(self, "size_bytes", self.DEFAULT_SIZE)

    @property
    def type_name(self) -> str:
        """Short name used as the traffic-accounting key."""
        return type(self).__name__
