"""Routing policies for unicast delivery.

The network substitutes DSR [Joh96] with shortest-path routing (see
DESIGN.md).  Two policies implement that substitution:

* :class:`ShortestPathRouter` — recompute a BFS path per send; simplest,
  always hop-optimal, the default.
* :class:`CachingRouter` — DSR-flavoured: keep discovered routes in a
  cache and reuse them while every link still exists, falling back to a
  fresh discovery when the route broke or aged out.  Reused routes may be
  slightly longer than optimal, exactly like real DSR route caches, and
  the hit/invalidation counters quantify how much a cache would help.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from repro.net.topology import TopologySnapshot

__all__ = ["Router", "ShortestPathRouter", "CachingRouter"]


class Router(abc.ABC):
    """Chooses the node sequence a unicast will traverse."""

    @abc.abstractmethod
    def find_route(
        self, snapshot: TopologySnapshot, source: int, target: int, now: float
    ) -> Optional[List[int]]:
        """Return a route ``[source, ..., target]`` or ``None``."""


class ShortestPathRouter(Router):
    """Hop-optimal BFS route, recomputed per send."""

    def find_route(
        self, snapshot: TopologySnapshot, source: int, target: int, now: float
    ) -> Optional[List[int]]:
        return snapshot.shortest_path(source, target)


class CachingRouter(Router):
    """Route cache with link-liveness validation and ageing.

    Parameters
    ----------
    route_ttl:
        Seconds a cached route may be reused before a fresh discovery,
        even if all its links still exist.
    """

    def __init__(self, route_ttl: float = 30.0) -> None:
        self.route_ttl = float(route_ttl)
        self._cache: Dict[Tuple[int, int], Tuple[float, List[int]]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def find_route(
        self, snapshot: TopologySnapshot, source: int, target: int, now: float
    ) -> Optional[List[int]]:
        key = (source, target)
        cached = self._cache.get(key)
        if cached is not None:
            cached_at, route = cached
            if now - cached_at <= self.route_ttl and self._route_alive(
                snapshot, route
            ):
                self.hits += 1
                return list(route)
            del self._cache[key]
            self.invalidations += 1
        self.misses += 1
        route = snapshot.shortest_path(source, target)
        if route is not None and len(route) > 1:
            self._cache[key] = (now, list(route))
            # Routes are symmetric under the disc model: prime the reverse.
            self._cache[(target, source)] = (now, list(reversed(route)))
        return route

    @staticmethod
    def _route_alive(snapshot: TopologySnapshot, route: List[int]) -> bool:
        # has_edge is O(1) and returns False for offline endpoints, so one
        # pass over the links also covers node liveness (cached routes
        # always span at least two nodes).
        has_edge = snapshot.has_edge
        for hop_a, hop_b in zip(route, route[1:]):
            if not has_edge(hop_a, hop_b):
                return False
        return True

    @property
    def cached_routes(self) -> int:
        """Number of routes currently cached."""
        return len(self._cache)

    def clear(self) -> None:
        """Drop every cached route."""
        self._cache.clear()
