"""Discrete-event simulation kernel (GloMoSim substitute).

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event loop and virtual clock.
* :class:`~repro.sim.engine.EventHandle` — cancellable scheduled event.
* :class:`~repro.sim.timers.PeriodicTimer` / :class:`~repro.sim.timers.CountdownTimer`
  — protocol timer helpers.
* :class:`~repro.sim.rng.RandomStreams` — named deterministic RNG streams.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RandomStreams, derive_seed
from repro.sim.timers import CountdownTimer, PeriodicTimer

__all__ = [
    "Simulator",
    "EventHandle",
    "PeriodicTimer",
    "CountdownTimer",
    "RandomStreams",
    "derive_seed",
]
