"""Named deterministic random streams.

Every source of randomness in a simulation draws from a *named stream*
derived from a single root seed.  This gives two essential properties:

* **Reproducibility** — the same root seed always produces the same run.
* **Isolation** — adding a new random consumer (e.g. a new protocol timer)
  does not perturb the draws seen by existing consumers, because each
  consumer owns its own generator.

Example
-------
>>> streams = RandomStreams(seed=42)
>>> a = streams.stream("mobility/node-3")
>>> b = streams.stream("workload/query/node-3")
>>> a is streams.stream("mobility/node-3")
True
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so that textually similar names yield uncorrelated seeds.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory and registry of named :class:`random.Random` instances.

    Parameters
    ----------
    seed:
        Root seed.  Every named stream is derived deterministically from it.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = random.Random(derive_seed(self._seed, name))
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child registry whose root seed is derived from ``name``.

        Useful to hand a subsystem its own namespace of streams.
        """
        return RandomStreams(derive_seed(self._seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={len(self._streams)})"
