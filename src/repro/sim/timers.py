"""Timer helpers built on top of the event kernel.

Two recurring patterns in the protocols of this reproduction are:

* a *periodic* action (the source host flooding ``INVALIDATION`` every TTN
  seconds) — :class:`PeriodicTimer`;
* a *countdown* that is repeatedly renewed (the TTR/TTP freshness windows
  of relay and cache peers) — :class:`CountdownTimer`.

Both are thin, allocation-light wrappers over :class:`~repro.sim.engine.Simulator`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import EventHandle, Simulator, StartupBatch

__all__ = ["PeriodicTimer", "CountdownTimer"]


class PeriodicTimer:
    """Fire ``callback()`` every ``interval`` seconds until stopped.

    Parameters
    ----------
    sim:
        The simulator providing the clock.
    interval:
        Period in seconds; must be positive.  May be changed between ticks
        via :attr:`interval`.
    callback:
        Zero-argument callable invoked on every tick.
    start_offset:
        Delay before the first tick.  Defaults to one full ``interval``.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        start_offset: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval!r}")
        self._sim = sim
        self.interval = float(interval)
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self._start_offset = interval if start_offset is None else float(start_offset)
        self._ticks = 0

    @property
    def running(self) -> bool:
        """``True`` while the timer is armed."""
        return self._handle is not None and self._handle.pending

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    def start(self, batch: Optional[StartupBatch] = None) -> None:
        """Arm the timer.  Idempotent while running.

        With ``batch``, the first tick is queued into the collector
        instead of filed immediately; the handle arrives via the adopt
        hook when the batch flushes.  Callers must flush before starting
        this timer again.
        """
        if self.running:
            return
        if batch is not None:
            batch.add(self._start_offset, self._fire, adopt=self._adopt)
            return
        self._handle = self._sim.schedule(self._start_offset, self._fire)

    def _adopt(self, handle: EventHandle) -> None:
        self._handle = handle

    def stop(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._ticks += 1
        # Re-arm the just-fired handle in place: one wheel re-slot per
        # tick, no new EventHandle.  Safe because the timer exclusively
        # owns the handle (we are running inside its own callback).
        self._handle = self._sim.reschedule(self._handle, self.interval)
        self._callback()


class CountdownTimer:
    """A renewable freshness window (models the paper's TTN/TTR/TTP fields).

    The timer counts down from ``duration``; :meth:`renew` resets it to the
    full duration.  :attr:`remaining` answers the paper's ``TTx > 0`` tests
    and an optional ``on_expire`` callback fires when the window closes.
    """

    def __init__(
        self,
        sim: Simulator,
        duration: float,
        on_expire: Optional[Callable[[], Any]] = None,
    ) -> None:
        if duration <= 0:
            raise SimulationError(f"countdown duration must be positive, got {duration!r}")
        self._sim = sim
        self.duration = float(duration)
        self._on_expire = on_expire
        self._expires_at = sim.now  # starts expired until first renew()
        self._handle: Optional[EventHandle] = None

    @property
    def remaining(self) -> float:
        """Seconds left in the window; 0 when expired."""
        return max(0.0, self._expires_at - self._sim.now)

    @property
    def expired(self) -> bool:
        """``True`` once the window has closed."""
        return self.remaining <= 0.0

    @property
    def expires_at(self) -> float:
        """Absolute simulation time at which the window closes."""
        return self._expires_at

    def renew(self, duration: Optional[float] = None) -> None:
        """Reset the countdown to ``duration`` (default: the full window)."""
        window = self.duration if duration is None else float(duration)
        if window < 0:
            raise SimulationError(f"renew duration must be non-negative, got {window!r}")
        self._expires_at = self._sim.now + window
        if self._on_expire is not None and window > 0:
            handle = self._handle
            if handle is not None:
                # In-place wheel re-slot: no cancel tombstone, no new
                # handle.  Consumes one sequence number, exactly like the
                # cancel-and-reschedule idiom it replaces.
                self._handle = self._sim.reschedule(handle, window)
            else:
                self._handle = self._sim.schedule(window, self._expire)
            return
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def expire_now(self) -> None:
        """Force the window closed immediately (without firing callbacks)."""
        self._expires_at = self._sim.now
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _expire(self) -> None:
        self._handle = None
        if self._on_expire is not None:
            self._on_expire()
