"""Deterministic discrete-event simulation kernel.

This module is the foundation every other subsystem builds on.  It
provides a hybrid event engine:

* :class:`Simulator` owns the virtual clock and the pending-event store.
* :class:`EventHandle` is returned by every ``schedule`` call and allows
  the caller to cancel the event before it fires.

The store is a two-level hierarchical timer wheel (a bucketed calendar
queue) backed by two small binary heaps:

* ``_near`` — a heap holding the events of the slot currently being
  drained; its head is always the globally earliest live event.
* ``wheel0`` — 256 fine slots of 0.25 s each (a 64 s horizon).  Filing
  and cancelling are O(1) list operations; no tombstones sift through a
  big heap.
* ``wheel1`` — 256 coarse slots of 64 s each (a 16384 s horizon) that
  cascade into ``wheel0`` as the cursor crosses each 64 s boundary.
  This absorbs the paper's long-period timers (TTR/TTN/TTP/Δ).
* ``_far`` — the classic binary heap, kept only as the fallback for
  events beyond the wheel horizon (and as the whole engine when the
  wheel is disabled via ``Simulator(wheel=False)`` or ``REPRO_WHEEL=0``).

Both engines are *bit-identical*: ties in event time are broken by a
monotonically increasing sequence number, slot widths are powers of two
(so ``floor(time * 4)`` is exact binary-float arithmetic), and every slot
drains through the sorted ``_near`` heap — so the fire order is exactly
the ``(time, seq)`` order of the single-heap engine.  The property suite
in ``tests/test_sim_wheel_property.py`` holds this equivalence under
randomized schedule/cancel/renew/run interleavings.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(5.0, fired.append, "a")
>>> _ = sim.schedule(1.0, fired.append, "b")
>>> sim.run()
>>> fired
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
from typing import Any, Callable, Iterable, List, Optional

from repro.errors import SchedulingError, SimulationError
from repro.obs.bus import NULL_TRACE

__all__ = ["EventHandle", "Simulator", "StartupBatch"]

_floor = math.floor
_heappush = heapq.heappush
_heappop = heapq.heappop


def _wheel_default() -> bool:
    """Engine selection: the wheel is on unless ``REPRO_WHEEL=0``."""
    return os.environ.get("REPRO_WHEEL", "1") != "0"


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Instances are created exclusively by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code only cancels or inspects
    them.  Handles used by the fire-and-forget :meth:`Simulator.post`
    fast path are pooled and recycled after firing — they never escape
    the engine.
    """

    __slots__ = (
        "time",
        "seq",
        "callback",
        "args",
        "cancelled",
        "fired",
        "_on_cancel",
        "_recycle",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._on_cancel = on_cancel
        self._recycle = False

    def cancel(self) -> bool:
        """Cancel the event.

        Returns ``True`` if the event was pending and is now cancelled,
        ``False`` if it had already fired or was already cancelled.
        """
        if self.fired or self.cancelled:
            return False
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
        return True

    @property
    def pending(self) -> bool:
        """``True`` while the event is still waiting to fire."""
        return not (self.fired or self.cancelled)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Single-threaded discrete-event simulator with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).  Defaults to 0.
    wheel:
        ``True``/``False`` forces the timer-wheel or pure-heap engine;
        ``None`` (the default) follows the ``REPRO_WHEEL`` environment
        variable (wheel on unless set to ``0``).  Both engines fire
        events in an identical order.
    """

    # Never compact tiny heaps: rebuilding a 20-entry list saves nothing.
    _COMPACT_FLOOR = 64
    # Wheel sweeps walk all 512 buckets, so they amortize over a larger
    # floor of dead entries than the far-heap compaction does.
    _SWEEP_FLOOR = 512
    # Fire-and-forget handles recycled through ``post`` are pooled up to
    # this many; beyond it they are simply dropped to the allocator.
    _POOL_CAP = 4096

    # Wheel geometry.  The fine slot width is a power of two so that
    # ``floor(time * 4)`` is exact binary floating-point arithmetic:
    # slot membership never suffers rounding drift.  Level 0 covers
    # 256 x 0.25 s = 64 s; level 1 covers 256 x 64 s = 16384 s.
    _SLOT_INV = 4.0
    _SLOT_WIDTH = 0.25
    _SLOT_BITS = 8
    _SLOT_MASK = 255

    def __init__(self, start_time: float = 0.0, wheel: Optional[bool] = None) -> None:
        if not math.isfinite(start_time):
            raise SimulationError(f"start_time must be finite, got {start_time!r}")
        self._now = float(start_time)
        self._wheel_enabled = _wheel_default() if wheel is None else bool(wheel)
        self._seq = itertools.count()
        self._events_processed = 0
        self._pending = 0
        self._running = False
        # Far heap: events beyond the wheel horizon (or everything when
        # the wheel is disabled).  Cancelled entries become tombstones
        # that compact once they outnumber live entries.
        self._far: List[EventHandle] = []
        self._tombstones = 0
        self.heap_compactions = 0
        # Timer wheel: the current slot drains through the sorted _near
        # heap; future slots are unsorted buckets (lists) drained in
        # (time, seq) order when the cursor reaches them.
        self._near: List[EventHandle] = []
        self._wheel0: List[Optional[List[EventHandle]]] = [None] * 256
        self._wheel1: List[Optional[List[EventHandle]]] = [None] * 256
        self._cursor = _floor(self._now * 4.0)
        self._w0_count = 0
        self._w1_count = 0
        # Physical wheel entries (incl. _near) that no longer are the live
        # filing of a pending event: cancelled handles plus stale bucket
        # refs left behind by in-place reschedules.  They are skipped at
        # drain time and swept in bulk once they dominate.
        self._wheel_dead = 0
        self.wheel_sweeps = 0
        self._pool: List[EventHandle] = []
        # Cached bound hooks: identity-compared to locate an event.
        self._wheel_hook = self._note_wheel_cancel
        self._far_hook = self._note_cancel
        #: Trace bus consulted by instrumented subsystems.  Defaults to the
        #: shared no-op bus so emit sites cost one attribute load + branch.
        self.trace = NULL_TRACE

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled events that have neither fired nor been cancelled.

        Maintained as a live counter (adjusted on schedule, cancel and
        fire), so reading it is O(1) rather than a scan of the store.
        """
        return self._pending

    @property
    def heap_size(self) -> int:
        """Physical size of the event store (tombstones and dead entries
        included), summed over the far heap and every wheel level."""
        return len(self._far) + len(self._near) + self._w0_count + self._w1_count

    @property
    def tombstones(self) -> int:
        """Cancelled entries currently stranded in the far heap."""
        return self._tombstones

    @property
    def wheel_enabled(self) -> bool:
        """``True`` when this simulator runs the timer-wheel engine."""
        return self._wheel_enabled

    def _note_cancel(self) -> None:
        self._pending -= 1
        self._tombstones += 1
        # Cancelled events normally leave the heap lazily, when they reach
        # the top.  Workloads that cancel most of what they schedule (e.g.
        # timers rearmed on every message) can strand far-future tombstones
        # below live events indefinitely, so once tombstones outnumber live
        # entries rebuild the heap from the survivors.  heapify keeps the
        # (time, seq) order, so pop order — and thus determinism — is
        # unchanged.
        if (
            self._tombstones * 2 > len(self._far)
            and len(self._far) >= self._COMPACT_FLOOR
        ):
            self._far = [event for event in self._far if not event.cancelled]
            heapq.heapify(self._far)
            self._tombstones = 0
            self.heap_compactions += 1

    def _note_wheel_cancel(self) -> None:
        self._pending -= 1
        self._wheel_dead += 1
        dead = self._wheel_dead
        if dead >= self._SWEEP_FLOOR and dead * 2 > (
            len(self._near) + self._w0_count + self._w1_count
        ):
            self._sweep_wheel()

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def attach_trace(self, bus) -> None:
        """Route trace events from this simulation into ``bus``.

        Subsystems read ``sim.trace`` lazily at each emit site, so a bus
        may be attached (or swapped) at any point of a run.
        """
        self.trace = bus

    def detach_trace(self) -> None:
        """Restore the no-op bus; subsequent events are discarded."""
        self.trace = NULL_TRACE

    # ------------------------------------------------------------------
    # Filing
    # ------------------------------------------------------------------
    def _file(self, event: EventHandle) -> None:
        """Insert a live event into the structure that owns its timestamp.

        The filing rule keeps one invariant: every entry outside ``_near``
        has a slot strictly beyond the cursor, so the ``_near`` head is
        always the global ``(time, seq)`` minimum.
        """
        if not self._wheel_enabled:
            event._on_cancel = self._far_hook
            _heappush(self._far, event)
            return
        s0 = _floor(event.time * 4.0)
        cursor = self._cursor
        if s0 <= cursor:
            event._on_cancel = self._wheel_hook
            _heappush(self._near, event)
            return
        if s0 - cursor <= 255:
            event._on_cancel = self._wheel_hook
            index = s0 & 255
            bucket = self._wheel0[index]
            if bucket is None:
                self._wheel0[index] = [event]
            else:
                bucket.append(event)
            self._w0_count += 1
            return
        if (s0 >> 8) - (cursor >> 8) <= 255:
            event._on_cancel = self._wheel_hook
            index = (s0 >> 8) & 255
            bucket = self._wheel1[index]
            if bucket is None:
                self._wheel1[index] = [event]
            else:
                bucket.append(event)
            self._w1_count += 1
            return
        event._on_cancel = self._far_hook
        _heappush(self._far, event)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay!r})")
        time = self._now + delay
        if not math.isfinite(time):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        event = EventHandle(time, next(self._seq), callback, args)
        self._file(event)
        self._pending += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if not math.isfinite(time):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time:.6f} before current time t={self._now:.6f}"
            )
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        event = EventHandle(time, next(self._seq), callback, args)
        self._file(event)
        self._pending += 1
        return event

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget scheduling on a pooled handle.

        Semantically identical to :meth:`schedule` except that no handle
        is returned: the engine recycles the :class:`EventHandle` through
        a freelist after the callback runs, so hot paths (message
        deliveries, flood fan-out) allocate nothing in steady state.
        Events posted this way cannot be cancelled.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay!r})")
        time = self._now + delay
        if not math.isfinite(time):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = next(self._seq)
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.fired = False
        else:
            event = EventHandle(time, next(self._seq), callback, args)
            event._recycle = True
        self._file(event)
        self._pending += 1

    def reschedule(self, event: EventHandle, delay: float) -> EventHandle:
        """Move a scheduled event to fire ``delay`` seconds from now,
        reusing its callback and args.

        This is the renewal primitive behind ``CountdownTimer.renew`` and
        ``PeriodicTimer``: in the wheel engine a pending bucket-resident
        event is re-slotted in place — no tombstone, no heap sift, no new
        allocation.  The returned handle is the one to retain; it differs
        from ``event`` only when in-place movement is impossible (the
        event sits in a sorted heap, whose entries must stay immutable,
        or was already cancelled) and the engine falls back to
        cancel-plus-reschedule.

        A *fired* event is re-armed in place, which is only safe when the
        caller exclusively owns the handle (the timers in
        :mod:`repro.sim.timers` do — they re-arm from inside the event's
        own callback).

        Exactly one sequence number is consumed — the same as the
        cancel-and-reschedule idiom this replaces — so the resulting
        event order is bit-identical between the two idioms and between
        both engines.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay!r})")
        time = self._now + delay
        if not math.isfinite(time):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if event.cancelled:
            return self.schedule_at(time, event.callback, *event.args)
        if event.fired:
            # Re-arm: a fired handle is detached from every structure.
            event.time = time
            event.seq = next(self._seq)
            event.fired = False
            self._file(event)
            self._pending += 1
            return event
        if event._on_cancel is self._wheel_hook:
            s0 = _floor(event.time * 4.0)
            if s0 > self._cursor:
                # Bucket-resident: mutate in place and refile.  The old
                # bucket keeps a stale reference that drain/sweep skips
                # (its recomputed slot no longer matches the bucket).
                event.time = time
                event.seq = next(self._seq)
                self._wheel_dead += 1
                self._file(event)
                dead = self._wheel_dead
                if dead >= self._SWEEP_FLOOR and dead * 2 > (
                    len(self._near) + self._w0_count + self._w1_count
                ):
                    self._sweep_wheel()
                return event
            # Resident in the sorted _near heap: entries there compare by
            # (time, seq) and must not be mutated, so fall through.
        event.cancel()
        return self.schedule_at(time, event.callback, *event.args)

    def schedule_batch(
        self, events: "Iterable[tuple]"
    ) -> List[EventHandle]:
        """Schedule many ``(delay, callback, args)`` events in one call.

        Sequence numbers are assigned in iteration order, so the resulting
        event stream is identical to calling :meth:`schedule` once per
        entry — this is purely a throughput optimisation for bulk
        producers.  ``args`` tuples are used as-is (no defensive copy).
        In the pure-heap engine large batches are appended and
        re-heapified instead of pushed one by one; ``heapify`` preserves
        the ``(time, seq)`` pop order, so determinism is unchanged.
        """
        now = self._now
        seq = self._seq
        batch: List[EventHandle] = []
        for delay, callback, args in events:
            if delay < 0:
                raise SchedulingError(
                    f"cannot schedule into the past (delay={delay!r})"
                )
            time = now + delay
            if not math.isfinite(time):
                raise SchedulingError(f"event time must be finite, got {time!r}")
            if not callable(callback):
                raise SchedulingError(f"callback must be callable, got {callback!r}")
            if type(args) is not tuple:
                args = tuple(args)
            batch.append(EventHandle(time, next(seq), callback, args))
        if not batch:
            return batch
        if self._wheel_enabled:
            file = self._file
            for event in batch:
                file(event)
        else:
            far_hook = self._far_hook
            heap = self._far
            if len(batch) * 8 < len(heap):
                for event in batch:
                    event._on_cancel = far_hook
                    _heappush(heap, event)
            else:
                for event in batch:
                    event._on_cancel = far_hook
                heap.extend(batch)
                heapq.heapify(heap)
        self._pending += len(batch)
        return batch

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def _pop_next(self, until: Optional[float]) -> Optional[EventHandle]:
        """Detach and return the earliest live event with time <= until.

        Returns ``None`` when no such event exists.  The clock is not
        touched; firing is the caller's job.
        """
        if not self._wheel_enabled:
            far = self._far
            while far:
                head = far[0]
                if head.cancelled:
                    _heappop(far)
                    self._tombstones -= 1
                    continue
                if until is not None and head.time > until:
                    return None
                return _heappop(far)
            return None
        near = self._near
        while True:
            while near:
                head = near[0]
                if head.cancelled or head.fired:
                    # Cancelled entries, or stale duplicate refs of an
                    # already-fired rescheduled handle.
                    _heappop(near)
                    self._wheel_dead -= 1
                    continue
                if until is not None and head.time > until:
                    return None
                return _heappop(near)
            if not self._refill_near(until):
                return None

    def _refill_near(self, until: Optional[float]) -> bool:
        """Advance the cursor until ``_near`` holds live-candidate events.

        Returns ``False`` when no event at time <= ``until`` remains in
        any structure.  Every advanced slot drains its wheel0 bucket (and
        cascades a wheel1 bucket at each 64 s boundary) into ``_near``;
        far-heap heads migrate in as their slot arrives.
        """
        near = self._near
        far = self._far
        wheel0 = self._wheel0
        while True:
            while far and far[0].cancelled:
                _heappop(far)
                self._tombstones -= 1
            if self._w0_count == 0:
                # wheel0 is physically empty: jump the cursor straight to
                # the next possible source of events — the next coarse
                # cascade boundary (when wheel1 holds anything) or the
                # far-heap head.  No intermediate slot can hold an event,
                # so no cascade is skipped.
                if self._w1_count:
                    target = ((self._cursor >> 8) + 1) << 8
                    if far:
                        far_slot = _floor(far[0].time * 4.0)
                        if far_slot < target:
                            target = far_slot
                elif far:
                    target = _floor(far[0].time * 4.0)
                else:
                    return False
                if target <= self._cursor:
                    target = self._cursor + 1
                slot = target
            else:
                slot = self._cursor + 1
            if until is not None and slot * 0.25 > until:
                # Every remaining event has time >= slot start > until.
                return False
            self._cursor = slot
            if slot & 255 == 0:
                self._cascade(slot >> 8)
            slot_end = (slot + 1) * 0.25
            while far:
                head = far[0]
                if head.cancelled:
                    _heappop(far)
                    self._tombstones -= 1
                    continue
                if head.time >= slot_end:
                    break
                _heappop(far)
                head._on_cancel = self._wheel_hook
                _heappush(near, head)
            index = slot & 255
            bucket = wheel0[index]
            if bucket is not None:
                wheel0[index] = None
                self._w0_count -= len(bucket)
                kept = 0
                for event in bucket:
                    if (
                        event.cancelled
                        or event.fired
                        or _floor(event.time * 4.0) != slot
                    ):
                        # Dead: cancelled, or a stale ref left behind by
                        # an in-place reschedule (the live ref sits where
                        # the *current* time files).
                        self._wheel_dead -= 1
                        continue
                    near.append(event)
                    kept += 1
                if kept:
                    heapq.heapify(near)
            if near:
                return True

    def _cascade(self, coarse: int) -> None:
        """Spill the wheel1 bucket for coarse slot ``coarse`` into wheel0.

        Runs exactly when the cursor enters the first fine slot of the
        64 s window, so every live entry refiles at ``slot > cursor``
        (or ``== cursor`` for the boundary slot itself, which goes to
        ``_near`` and drains immediately).
        """
        index = coarse & 255
        bucket = self._wheel1[index]
        if bucket is None:
            return
        self._wheel1[index] = None
        self._w1_count -= len(bucket)
        near = self._near
        wheel0 = self._wheel0
        cursor = self._cursor
        for event in bucket:
            if event.cancelled or event.fired:
                self._wheel_dead -= 1
                continue
            s0 = _floor(event.time * 4.0)
            if (s0 >> 8) != coarse:
                # Stale ref of a rescheduled handle; live copy elsewhere.
                self._wheel_dead -= 1
                continue
            if s0 <= cursor:
                _heappush(near, event)
                continue
            slot_index = s0 & 255
            fine = wheel0[slot_index]
            if fine is None:
                wheel0[slot_index] = [event]
            else:
                fine.append(event)
            self._w0_count += 1

    def _sweep_wheel(self) -> None:
        """Drop every dead entry from the wheel structures in one pass.

        Renewal-heavy workloads leave cancelled handles and stale
        reschedule refs in buckets far ahead of the cursor; sweeping once
        they dominate bounds wheel memory the same way far-heap
        compaction bounds the heap.  Only physical storage changes —
        live entries keep their (time, seq) — so fire order is
        untouched.
        """
        cursor = self._cursor
        coarse_cursor = cursor >> 8
        seen: set = set()
        for index in range(256):
            bucket = self._wheel0[index]
            if bucket is None:
                continue
            kept: List[EventHandle] = []
            for event in bucket:
                if event.cancelled or event.fired:
                    continue
                s0 = _floor(event.time * 4.0)
                if not (0 < s0 - cursor <= 255) or (s0 & 255) != index:
                    continue
                key = id(event)
                if key in seen:
                    continue
                seen.add(key)
                kept.append(event)
            self._wheel0[index] = kept or None
        for index in range(256):
            bucket = self._wheel1[index]
            if bucket is None:
                continue
            kept = []
            for event in bucket:
                if event.cancelled or event.fired:
                    continue
                s1 = _floor(event.time * 4.0) >> 8
                if not (0 < s1 - coarse_cursor <= 255) or (s1 & 255) != index:
                    continue
                key = id(event)
                if key in seen:
                    continue
                seen.add(key)
                kept.append(event)
            self._wheel1[index] = kept or None
        near = self._near
        if near:
            near[:] = [
                event for event in near if not (event.cancelled or event.fired)
            ]
            heapq.heapify(near)
        self._w0_count = sum(
            len(bucket) for bucket in self._wheel0 if bucket is not None
        )
        self._w1_count = sum(
            len(bucket) for bucket in self._wheel1 if bucket is not None
        )
        self._wheel_dead = 0
        self.wheel_sweeps += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if no event is
        pending.  Cancelled events are discarded silently.
        """
        event = self._pop_next(None)
        if event is None:
            return False
        self._now = event.time
        event.fired = True
        self._pending -= 1
        self._events_processed += 1
        callback = event.callback
        args = event.args
        if event._recycle and len(self._pool) < self._POOL_CAP:
            event.callback = None  # type: ignore[assignment]
            event.args = ()
            self._pool.append(event)
        callback(*args)
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event store drains (or ``max_events`` fire).

        Returns the number of events processed by this call.
        """
        return self._run_loop(until=None, max_events=max_events)

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run every event with timestamp ``<= time`` then set the clock to ``time``.

        Returns the number of events processed by this call.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run until t={time:.6f}: clock already at t={self._now:.6f}"
            )
        processed = self._run_loop(until=time, max_events=max_events)
        if self._now < time:
            self._now = time
        return processed

    def _run_loop(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("simulator is not re-entrant: already running")
        self._running = True
        processed = 0
        pool = self._pool
        pool_cap = self._POOL_CAP
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                event = self._pop_next(until)
                if event is None:
                    break
                self._now = event.time
                event.fired = True
                self._pending -= 1
                self._events_processed += 1
                callback = event.callback
                args = event.args
                if event._recycle and len(pool) < pool_cap:
                    event.callback = None  # type: ignore[assignment]
                    event.args = ()
                    pool.append(event)
                callback(*args)
                processed += 1
        finally:
            self._running = False
        return processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )


class StartupBatch:
    """Collector that turns many startup ``schedule`` calls into one batch.

    Simulation start-up arms tens of thousands of timers and arrival
    processes (one TTN timer, one query stream, one update stream, one
    coefficient-period timer and one switching process per host).  Each
    producer calling :meth:`Simulator.schedule` individually pays the
    per-call filing overhead; collecting the ``(delay, callback, args)``
    triples here and flushing them through
    :meth:`Simulator.schedule_batch` files them in one vectorized pass.

    Determinism contract: entries are filed in :meth:`add` order and
    :meth:`Simulator.schedule_batch` assigns sequence numbers in
    iteration order, so as long as callers ``add`` in the exact order
    they previously called ``schedule`` — and nothing else schedules
    between the first ``add`` and the :meth:`flush` — the resulting
    event stream is bit-identical to the unbatched path.  Producers that
    need their :class:`EventHandle` back (timers re-arm through it) pass
    an ``adopt`` callable, invoked with the handle at flush time.

    A batch is single-shot: flush it exactly once, before any of its
    producers can observe their handle.
    """

    __slots__ = ("_entries", "_adopters", "flushed")

    def __init__(self) -> None:
        self._entries: List[tuple] = []
        self._adopters: List[Optional[Callable[[EventHandle], None]]] = []
        self.flushed = False

    def __len__(self) -> int:
        return len(self._entries)

    def add(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        adopt: Optional[Callable[[EventHandle], None]] = None,
    ) -> None:
        """Queue one event; ``adopt`` receives its handle at flush time."""
        if self.flushed:
            raise SchedulingError("StartupBatch already flushed")
        self._entries.append((delay, callback, args))
        self._adopters.append(adopt)

    def flush(self, sim: Simulator) -> List[EventHandle]:
        """File every queued event in one :meth:`Simulator.schedule_batch`."""
        if self.flushed:
            raise SchedulingError("StartupBatch already flushed")
        self.flushed = True
        handles = sim.schedule_batch(self._entries)
        for handle, adopt in zip(handles, self._adopters):
            if adopt is not None:
                adopt(handle)
        self._entries = []
        self._adopters = []
        return handles
