"""Deterministic discrete-event simulation kernel.

This module is the foundation every other subsystem builds on.  It provides
a classic event-heap simulator:

* :class:`Simulator` owns the virtual clock and the pending-event heap.
* :class:`EventHandle` is returned by every ``schedule`` call and allows the
  caller to cancel the event before it fires.

The kernel is deliberately minimal and fully deterministic: two runs with
the same seed and the same schedule order produce identical event orderings
because ties in event time are broken by a monotonically increasing
sequence number.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(5.0, fired.append, "a")
>>> _ = sim.schedule(1.0, fired.append, "b")
>>> sim.run()
>>> fired
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Iterable, List, Optional

from repro.errors import SchedulingError, SimulationError
from repro.obs.bus import NULL_TRACE

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Instances are created exclusively by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code only cancels or inspects them.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "_on_cancel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._on_cancel = on_cancel

    def cancel(self) -> bool:
        """Cancel the event.

        Returns ``True`` if the event was pending and is now cancelled,
        ``False`` if it had already fired or was already cancelled.
        """
        if self.fired or self.cancelled:
            return False
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
        return True

    @property
    def pending(self) -> bool:
        """``True`` while the event is still waiting to fire."""
        return not (self.fired or self.cancelled)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Single-threaded discrete-event simulator with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).  Defaults to 0.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time):
            raise SimulationError(f"start_time must be finite, got {start_time!r}")
        self._now = float(start_time)
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._pending = 0
        self._tombstones = 0
        self.heap_compactions = 0
        self._running = False
        #: Trace bus consulted by instrumented subsystems.  Defaults to the
        #: shared no-op bus so emit sites cost one attribute load + branch.
        self.trace = NULL_TRACE

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled events that have neither fired nor been cancelled.

        Maintained as a live counter (adjusted on schedule, cancel and
        fire), so reading it is O(1) rather than a scan of the heap.
        """
        return self._pending

    @property
    def heap_size(self) -> int:
        """Current physical size of the event heap, tombstones included."""
        return len(self._heap)

    # Never compact tiny heaps: rebuilding a 20-entry list saves nothing.
    _COMPACT_FLOOR = 64

    def _note_cancel(self) -> None:
        self._pending -= 1
        self._tombstones += 1
        # Cancelled events normally leave the heap lazily, when they reach
        # the top.  Workloads that cancel most of what they schedule (e.g.
        # timers rearmed on every message) can strand far-future tombstones
        # below live events indefinitely, so once tombstones outnumber live
        # entries rebuild the heap from the survivors.  heapify keeps the
        # (time, seq) order, so pop order — and thus determinism — is
        # unchanged.
        if (
            self._tombstones * 2 > len(self._heap)
            and len(self._heap) >= self._COMPACT_FLOOR
        ):
            self._heap = [event for event in self._heap if not event.cancelled]
            heapq.heapify(self._heap)
            self._tombstones = 0
            self.heap_compactions += 1

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def attach_trace(self, bus) -> None:
        """Route trace events from this simulation into ``bus``.

        Subsystems read ``sim.trace`` lazily at each emit site, so a bus
        may be attached (or swapped) at any point of a run.
        """
        self.trace = bus

    def detach_trace(self) -> None:
        """Restore the no-op bus; subsequent events are discarded."""
        self.trace = NULL_TRACE

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if not math.isfinite(time):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time:.6f} before current time t={self._now:.6f}"
            )
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        event = EventHandle(time, next(self._seq), callback, args, self._note_cancel)
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def schedule_batch(
        self, events: "Iterable[tuple]"
    ) -> List[EventHandle]:
        """Schedule many ``(delay, callback, args)`` events in one call.

        Sequence numbers are assigned in iteration order, so the resulting
        event stream is identical to calling :meth:`schedule` once per
        entry — this is purely a throughput optimisation for bulk
        producers such as floods and batched validity-expiry timers.
        Large batches are appended and re-heapified instead of pushed one
        by one; ``heapify`` preserves the ``(time, seq)`` pop order, so
        determinism is unchanged.
        """
        now = self._now
        seq = self._seq
        note_cancel = self._note_cancel
        batch: List[EventHandle] = []
        for delay, callback, args in events:
            if delay < 0:
                raise SchedulingError(
                    f"cannot schedule into the past (delay={delay!r})"
                )
            time = now + delay
            if not math.isfinite(time):
                raise SchedulingError(f"event time must be finite, got {time!r}")
            if not callable(callback):
                raise SchedulingError(f"callback must be callable, got {callback!r}")
            batch.append(EventHandle(time, next(seq), callback, tuple(args), note_cancel))
        if not batch:
            return batch
        heap = self._heap
        if len(batch) * 8 < len(heap):
            for event in batch:
                heapq.heappush(heap, event)
        else:
            heap.extend(batch)
            heapq.heapify(heap)
        self._pending += len(batch)
        return batch

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        Cancelled events are discarded silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            event.fired = True
            self._pending -= 1
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event heap drains (or ``max_events`` fire).

        Returns the number of events processed by this call.
        """
        return self._run_loop(until=None, max_events=max_events)

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run every event with timestamp ``<= time`` then set the clock to ``time``.

        Returns the number of events processed by this call.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run until t={time:.6f}: clock already at t={self._now:.6f}"
            )
        processed = self._run_loop(until=time, max_events=max_events)
        if self._now < time:
            self._now = time
        return processed

    def _run_loop(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("simulator is not re-entrant: already running")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    self._tombstones -= 1
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = head.time
                head.fired = True
                self._pending -= 1
                self._events_processed += 1
                head.callback(*head.args)
                processed += 1
        finally:
            self._running = False
        return processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
