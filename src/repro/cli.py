"""Command-line interface for the reproduction.

Usage::

    python -m repro --sim-time 900 --seed 3 run rpcc-sc
    python -m repro table1
    python -m repro --sim-time 600 --jobs 4 fig7a --plot --csv fig7a.csv
    python -m repro --sim-time 600 fig9 --ttls 1 3 7
    python -m repro --sim-time 600 --no-cache compare
    python -m repro matrix examples/matrix/smoke.toml --workers 2 --store
    python -m repro list

Every command accepts ``--sim-time``/``--warmup``/``--seed`` so the
paper-scale five-hour runs and quick smoke runs use the same entry point.
``--jobs N`` fans independent runs out over N worker processes with
bit-identical results; finished runs land in a content-addressed cache
(``results/.cache/`` unless ``--cache-dir`` moves it), so ``fig8a`` after
``fig7a`` re-reads the shared sweep instead of re-simulating it.  Disable
with ``--no-cache``; purge by deleting the cache directory.

``--store [DIR]`` switches campaign persistence to the append-only
columnar result store (one batch commit per ~256 runs instead of one
pickle per run); add ``--resume`` to serve already-completed points from
the store, and ``--workers N`` to shard the remaining points across N
worker processes by stable content-address hash.  A killed campaign
rerun with the same ``--store --resume`` flags picks up where it
stopped.  See EXPERIMENTS.md ("Campaign execution") for the full model.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.executor import (
    DEFAULT_CACHE_DIR,
    CampaignExecutor,
    ResultCache,
)
from repro.experiments.store import DEFAULT_STORE_DIR, ResultStore
from repro.experiments.transport import ShardedTransport
from repro.experiments.figures import (
    CACHE_NUMBERS,
    QUERY_INTERVALS,
    TTL_VALUES,
    UPDATE_INTERVALS,
    fig7a,
    fig7b,
    fig7c,
    fig8a,
    fig8b,
    fig8c,
    fig9a,
    fig9b,
    run_fig9,
)
from repro.experiments.figures.base import run_axis_sweep
from repro.experiments.runner import PLACEMENT_SCENARIOS, STRATEGY_SPECS
from repro.metrics.report import format_summary, format_table

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig7a": ("update_interval", UPDATE_INTERVALS, fig7a, False),
    "fig7b": ("query_interval", QUERY_INTERVALS, fig7b, False),
    "fig7c": ("cache_num", tuple(CACHE_NUMBERS), fig7c, False),
    "fig8a": ("update_interval", UPDATE_INTERVALS, fig8a, True),
    "fig8b": ("query_interval", QUERY_INTERVALS, fig8b, True),
    "fig8c": ("cache_num", tuple(CACHE_NUMBERS), fig8c, True),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of RPCC (ICDCS 2005): run simulations "
        "and regenerate the paper's figures.",
    )
    parser.add_argument("--sim-time", type=float, default=1800.0,
                        help="measured window in simulated seconds")
    parser.add_argument("--warmup", type=float, default=600.0,
                        help="warm-up seconds excluded from metrics")
    parser.add_argument("--seed", type=int, default=1, help="root RNG seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent runs "
                        "(1 = serial; results are bit-identical either way)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="where cached results live "
                        f"(default {DEFAULT_CACHE_DIR}; delete to purge)")
    parser.add_argument("--store", nargs="?", const=DEFAULT_STORE_DIR,
                        metavar="DIR", default=None,
                        help="persist campaign results in an append-only "
                        "columnar store at DIR instead of per-run pickles "
                        f"(default DIR {DEFAULT_STORE_DIR}; see "
                        "EXPERIMENTS.md); the pickle cache stays a "
                        "read-only compatibility path")
    parser.add_argument("--resume", action="store_true",
                        help="with --store: serve already-completed points "
                        "from the store and simulate only the remainder")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard campaign points across N worker "
                        "processes by stable content-address hash "
                        "(static sharding; combine with --store --resume "
                        "for resumable campaigns — mutually exclusive "
                        "with --jobs)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one simulation")
    run_parser.add_argument("spec", choices=STRATEGY_SPECS)
    run_parser.add_argument("--scenario", default="standard",
                            choices=PLACEMENT_SCENARIOS)
    run_parser.add_argument("--trace", metavar="PATH",
                            help="also record a JSONL event trace to PATH "
                            "(bypasses the result cache)")
    run_parser.add_argument("--profile", metavar="OUT.pstats",
                            help="run under cProfile and write pstats data "
                            "to this path (bypasses the result cache)")
    run_parser.add_argument("--profile-sort", default="cumulative",
                            choices=("cumulative", "tottime"),
                            help="ordering of the stderr hot-spot listing "
                            "printed by --profile (default: cumulative; "
                            "tottime surfaces self-time leaf hot spots)")

    trace_parser = sub.add_parser(
        "trace",
        help="run one traced simulation, export the JSONL event trace and "
        "check the consistency invariants (see docs/OBSERVABILITY.md)",
    )
    trace_parser.add_argument("spec", choices=STRATEGY_SPECS)
    trace_parser.add_argument("--scenario", default="standard",
                              choices=PLACEMENT_SCENARIOS)
    trace_parser.add_argument("--out", default="trace.jsonl",
                              help="JSONL trace output path")
    trace_parser.add_argument("--no-check", action="store_true",
                              help="skip the invariant checker replay")
    trace_parser.add_argument("--delta", type=float, default=None,
                              help="checker Δ bound in seconds "
                              "(default: the run's TTP)")
    trace_parser.add_argument("--slack", type=float, default=1.0,
                              help="checker timing slack in seconds "
                              "(default 1.0)")

    for faulty in (run_parser, trace_parser):
        faulty.add_argument("--loss-rate", type=float, default=0.0,
                            help="uniform per-hop packet loss probability "
                            "(default 0 = lossless)")
        faulty.add_argument("--faults", metavar="PLAN.json",
                            help="deterministic fault plan to inject "
                            "(see docs/ROBUSTNESS.md; bypasses nothing — "
                            "the plan is part of the result-cache key)")
        faulty.add_argument("--controller", metavar="NAME", default=None,
                            help="online control policy adapting protocol "
                            "parameters at run time (see 'repro list'; "
                            "default: no controller)")
        faulty.add_argument("--controller-interval", type=float, default=30.0,
                            help="seconds between controller ticks "
                            "(default 30)")

    sub.add_parser("table1", help="print Table 1")
    sub.add_parser("compare", help="all six strategies at Table-1 defaults")

    for name in _FIGURES:
        figure_parser = sub.add_parser(name, help=f"reproduce {name}")
        figure_parser.add_argument("--plot", action="store_true",
                                   help="ASCII chart alongside the table")
        figure_parser.add_argument("--csv", metavar="PATH",
                                   help="also write the series to a CSV file")

    fig9_parser = sub.add_parser("fig9", help="reproduce Fig 9 (both panels)")
    fig9_parser.add_argument("--plot", action="store_true")
    fig9_parser.add_argument("--csv", metavar="PREFIX",
                             help="write <PREFIX>a.csv and <PREFIX>b.csv")
    fig9_parser.add_argument("--ttls", type=int, nargs="+",
                             default=list(TTL_VALUES))

    all_parser = sub.add_parser(
        "all", help="regenerate every figure and write CSVs to a directory"
    )
    all_parser.add_argument("--out", default="results",
                            help="output directory for the CSV files")

    matrix_parser = sub.add_parser(
        "matrix",
        help="run a declarative experiment matrix "
        "(scenario x strategy x policy x seeds; see docs/SCENARIOS.md)",
    )
    matrix_parser.add_argument("file", metavar="FILE",
                               help="matrix file (.toml or .json)")
    matrix_parser.add_argument("--csv", metavar="PATH",
                               help="also write the aggregate table to a CSV "
                               "file (repr floats; byte-stable across "
                               "serial/sharded/resumed runs)")
    # Campaign-execution flags are global options, but a matrix run is
    # where they matter most — accept them after the subcommand too.
    # SUPPRESS keeps a subparser default from clobbering a value the
    # global parser already set.
    matrix_parser.add_argument("--jobs", type=int, default=argparse.SUPPRESS,
                               help=argparse.SUPPRESS)
    matrix_parser.add_argument("--workers", type=int,
                               default=argparse.SUPPRESS,
                               help=argparse.SUPPRESS)
    matrix_parser.add_argument("--store", nargs="?", const=DEFAULT_STORE_DIR,
                               metavar="DIR", default=argparse.SUPPRESS,
                               help=argparse.SUPPRESS)
    matrix_parser.add_argument("--resume", action="store_true",
                               default=argparse.SUPPRESS,
                               help=argparse.SUPPRESS)
    matrix_parser.add_argument("--no-cache", action="store_true",
                               default=argparse.SUPPRESS,
                               help=argparse.SUPPRESS)
    matrix_parser.add_argument("--controller", metavar="NAME", default=None,
                               help="online control policy applied to every "
                               "matrix point (base-config override; see "
                               "'repro list')")
    matrix_parser.add_argument("--controller-interval", type=float,
                               default=30.0, help=argparse.SUPPRESS)
    matrix_parser.add_argument("--check-invariants", action="store_true",
                               help="run every point traced and serial, "
                               "replay the consistency invariant checker "
                               "over each event stream, and exit nonzero "
                               "on any violation (bypasses the cache)")

    sub.add_parser(
        "list",
        help="list registered scenarios, replacement policies and "
        "strategy specs",
    )
    return parser


def _config(args: argparse.Namespace) -> SimulationConfig:
    extras = {}
    if getattr(args, "loss_rate", 0.0):
        extras["loss_rate"] = args.loss_rate
    if getattr(args, "faults", None):
        from repro.faults import FaultPlan

        extras["faults"] = FaultPlan.load(args.faults)
    if getattr(args, "controller", None):
        extras["controller"] = args.controller
        extras["controller_interval"] = getattr(args, "controller_interval", 30.0)
    return SimulationConfig(
        sim_time=args.sim_time, warmup=args.warmup, seed=args.seed, **extras
    )


def _executor(args: argparse.Namespace) -> CampaignExecutor:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = ResultStore(args.store) if args.store else None
    if args.resume and store is None:
        raise ConfigurationError("--resume needs --store")
    transport = None
    if args.workers > 1:
        if args.jobs > 1:
            raise ConfigurationError(
                "--workers (static sharding) and --jobs (dynamic pool) "
                "are mutually exclusive; pick one"
            )
        transport = ShardedTransport(args.workers)
    return CampaignExecutor(
        jobs=args.jobs,
        cache=cache,
        store=store,
        resume=args.resume,
        transport=transport,
    )


def _report_cache(executor: CampaignExecutor) -> None:
    cache = executor.cache
    store = executor.store
    if cache is not None and (cache.hits or cache.misses):
        footer = (f"cache: {cache.hits} hits, {cache.misses} misses "
                  f"({cache.root}); {executor.runs_executed} runs simulated")
        if cache.corrupt:
            footer += f"; {cache.corrupt} corrupt entries quarantined"
        print(footer)
    if store is not None:
        stats = store.stats
        print(f"store: {executor.store_hits} served, "
              f"{stats['records_appended']} appended in "
              f"{stats['batches_committed']} batches ({store.root}); "
              f"{executor.runs_executed} runs simulated")


def _command_run(args: argparse.Namespace, executor: CampaignExecutor) -> None:
    if getattr(args, "profile", None):
        result = _run_profiled(
            _config(args), args.spec, args.scenario, args.profile,
            sort=getattr(args, "profile_sort", "cumulative"),
        )
        print(f"profile: pstats data -> {args.profile}")
    elif getattr(args, "trace", None):
        # A traced run is never cache-served: the cache stores metrics,
        # not event streams, and a hit would leave the trace file empty.
        result, events_written = _run_traced(
            _config(args), args.spec, args.scenario, args.trace
        )
        print(f"trace: {events_written} events -> {args.trace}")
    else:
        result = executor.run_one(_config(args), args.spec, args.scenario)
    print(format_summary(result.summary, title=f"{args.spec} ({args.scenario})"))
    if result.relay_samples:
        print(f"\nmean relay population: {result.mean_relay_count:.1f}")
    core = getattr(result, "core", "scalar")
    print(f"events processed: {result.events_processed:,} "
          f"in {result.wall_clock_seconds:.1f}s wall clock "
          f"({core} core)")
    stats = getattr(result, "topology_stats", None)
    if stats:
        print("topology: "
              f"{stats.get('snapshots_built', 0)} built, "
              f"{stats.get('snapshots_reused', 0)} reused, "
              f"{stats.get('incremental_updates', 0)} incremental "
              f"({stats.get('bfs_trees_retained', 0)} BFS trees retained)")
    _print_fault_stats(result)
    _print_control_decisions(result)


def _print_fault_stats(result) -> None:
    """Degradation footer for fault-injected runs (empty dict = silent)."""
    stats = getattr(result, "fault_stats", None)
    if not stats:
        return
    print("degradation: "
          f"availability {stats.get('availability', 1.0):.3f}, "
          f"stale-serve rate in partition "
          f"{stats.get('stale_serve_rate_in_partition', 0.0):.3f} "
          f"({stats.get('reads_in_partition', 0):.0f} reads over "
          f"{stats.get('partition_seconds', 0.0):.0f}s partitioned), "
          f"mean time-to-reconverge "
          f"{stats.get('mean_time_to_reconverge', 0.0):.1f}s "
          f"over {stats.get('heals_observed', 0):.0f} heals")


def _print_control_decisions(result) -> None:
    """Controller footer: one line per applied decision (empty = silent)."""
    decisions = getattr(result, "control_decisions", None)
    if not decisions:
        return
    print(f"controller: {len(decisions)} decision(s) applied")
    for decision in decisions:
        knobs = ", ".join(
            f"{knob}={value:g}"
            for knob, value in sorted(decision["applied"].items())
        )
        if decision.get("modes"):
            extra = f"; {decision['modes']} item mode(s)"
        else:
            extra = ""
        print(f"  t={decision['time']:.0f}s [{decision['reason']}] "
              f"{knobs}{extra}")


def _run_profiled(
    config: SimulationConfig,
    spec: str,
    scenario: str,
    out_path: str,
    sort: str = "cumulative",
):
    """Run one simulation under cProfile; dump pstats data to ``out_path``.

    Only the simulation loop is profiled (not argument parsing or module
    import), and the run always executes — serving a cached result would
    profile nothing.  The 15 largest functions by ``sort`` order go to
    stderr so the hot spots are visible without opening the pstats file
    (and without polluting the stdout summary).
    """
    import cProfile
    import pstats

    from repro.experiments.runner import build_simulation

    simulation = build_simulation(config, spec, scenario)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = simulation.run()
    finally:
        profiler.disable()
    profiler.dump_stats(out_path)
    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.sort_stats(sort).print_stats(15)
    return result


def _run_traced(config: SimulationConfig, spec: str, scenario: str, out_path: str):
    """Run one simulation with a JSONL trace sink attached."""
    from repro.experiments.runner import build_simulation
    from repro.obs import JsonlSink, TraceBus

    bus = TraceBus()
    sink = bus.add_sink(JsonlSink(out_path))
    try:
        result = build_simulation(config, spec, scenario, trace=bus).run()
    finally:
        bus.close()
    return result, sink.events_written


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs import InvariantChecker
    from repro.obs.events import iter_jsonl

    config = _config(args)
    result, events_written = _run_traced(config, args.spec, args.scenario, args.out)
    print(format_summary(result.summary, title=f"{args.spec} ({args.scenario})"))
    print(f"\ntrace: {events_written} events -> {args.out}")
    _print_fault_stats(result)
    _print_control_decisions(result)
    if args.no_check:
        return 0
    # Reload from disk: the check exercises the full export -> import path.
    delta = args.delta if args.delta is not None else config.ttp
    checker = InvariantChecker(delta=delta, slack=args.slack)
    checker.feed_all(iter_jsonl(args.out))
    report = checker.finish()
    print()
    print(report.format())
    return 0 if report.ok else 1


def _command_table1(args: argparse.Namespace) -> None:
    rows = _config(args).table1_rows()
    print(format_table(("Parameter", "Description", "Value"), rows,
                       title="Table 1. Simulation Parameters"))


def _command_compare(args: argparse.Namespace, executor: CampaignExecutor) -> None:
    config = _config(args)
    results = executor.run_many([(config, spec, "standard") for spec in STRATEGY_SPECS])
    rows = []
    for spec, result in zip(STRATEGY_SPECS, results):
        summary = result.summary
        rows.append((
            spec,
            summary.transmissions,
            round(summary.mean_latency, 2),
            f"{summary.queries_answered}/{summary.queries_issued}",
            round(summary.stale_ratio, 3),
            round(summary.violation_ratio, 3),
        ))
    print(format_table(
        ("strategy", "tx", "latency(s)", "answered", "stale", "violations"),
        rows, title="strategy comparison",
    ))


def _command_figure(args: argparse.Namespace, executor: CampaignExecutor) -> None:
    axis, values, builder, log_y = _FIGURES[args.command]
    config = _config(args)
    results = run_axis_sweep(config, axis, values, STRATEGY_SPECS, executor=executor)
    figure = builder(config, STRATEGY_SPECS, values, results)
    print(figure.format())
    if args.plot:
        print()
        print(figure.plot(log_y=log_y))
    if args.csv:
        figure.save_csv(args.csv)
        print(f"wrote {args.csv}")


def _command_fig9(args: argparse.Namespace, executor: CampaignExecutor) -> None:
    payload = run_fig9(_config(args), tuple(args.ttls), executor=executor)
    for builder, log_y, suffix in ((fig9a, False, "a"), (fig9b, True, "b")):
        figure = builder(_config(args), tuple(args.ttls), payload)
        print(figure.format())
        if args.plot:
            print()
            print(figure.plot(log_y=log_y))
        if args.csv:
            target = f"{args.csv}{suffix}.csv"
            figure.save_csv(target)
            print(f"wrote {target}")
        print()


def _command_all(args: argparse.Namespace, executor: CampaignExecutor) -> None:
    import os

    os.makedirs(args.out, exist_ok=True)
    config = _config(args)
    # Fig 7 and Fig 8 read different columns of the same sweeps: run each
    # sweep once and extract twice.
    sweeps = {
        "update_interval": UPDATE_INTERVALS,
        "query_interval": QUERY_INTERVALS,
        "cache_num": tuple(CACHE_NUMBERS),
    }
    cached = {
        axis: run_axis_sweep(config, axis, values, STRATEGY_SPECS, executor=executor)
        for axis, values in sweeps.items()
    }
    for name, (axis, values, builder, _) in _FIGURES.items():
        figure = builder(config, STRATEGY_SPECS, values, cached[axis])
        print(figure.format())
        print()
        target = os.path.join(args.out, f"{name}.csv")
        figure.save_csv(target)
        print(f"wrote {target}")
        print()
    payload = run_fig9(config, TTL_VALUES, executor=executor)
    for builder, suffix in ((fig9a, "fig9a"), (fig9b, "fig9b")):
        figure = builder(config, TTL_VALUES, payload)
        print(figure.format())
        target = os.path.join(args.out, f"{suffix}.csv")
        figure.save_csv(target)
        print(f"wrote {target}")
        print()


def _command_matrix(args: argparse.Namespace, executor: CampaignExecutor) -> int:
    from repro.scenarios.matrix import (
        AGGREGATE_COLUMNS,
        aggregate_matrix,
        expand_matrix,
        load_matrix,
        matrix_csv,
    )

    matrix = load_matrix(args.file)
    points = expand_matrix(matrix, base_config=_config(args))
    print(f"matrix {args.file}: {matrix.cells} cells, "
          f"{len(points)} unique points")
    violations = 0
    if getattr(args, "check_invariants", False):
        # Checker gating needs the event stream, which the cache does not
        # store: every point runs traced, serial and uncached.
        from repro.obs import InvariantChecker, ListSink, TraceBus

        from repro.experiments.runner import build_simulation

        results = []
        for point in points:
            config, spec, scenario = point.task
            bus = TraceBus()
            sink = bus.add_sink(ListSink())
            results.append(
                build_simulation(config, spec, scenario, trace=bus).run()
            )
            bus.close()
            report = InvariantChecker(delta=config.ttp).feed_all(
                sink.events
            ).finish()
            if not report.ok:
                violations += len(report.violations)
                print(f"INVARIANT VIOLATIONS at {point.scenario}/"
                      f"{point.strategy}/{point.policy}/seed{point.seed}:")
                print(report.format())
    else:
        results = executor.run_many([point.task for point in points])
    rows = aggregate_matrix(points, results)
    display = [
        tuple(
            round(value, 3) if isinstance(value, float) else value
            for value in row
        )
        for row in rows
    ]
    print(format_table(AGGREGATE_COLUMNS, display, title="matrix aggregate"))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8", newline="") as handle:
            handle.write(matrix_csv(rows))
        print(f"wrote {args.csv}")
    if getattr(args, "check_invariants", False):
        status = "OK" if violations == 0 else f"{violations} violation(s)"
        print(f"invariants: {status} across {len(points)} points")
        return 1 if violations else 0
    return 0


def _command_list() -> None:
    from repro.scenarios.registry import CONTROLLERS, POLICIES, SCENARIOS

    print("scenarios:")
    for name in SCENARIOS.names():
        spec = SCENARIOS.get(name)
        print(f"  {name:<18} {spec.description}")
    print("replacement policies:")
    for name in POLICIES.names():
        print(f"  {name}")
    print("control policies:")
    for name in CONTROLLERS.names():
        print(f"  {name}")
    print("strategy specs:")
    for spec in STRATEGY_SPECS:
        print(f"  {spec}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        _command_table1(args)
        return 0
    if args.command == "list":
        _command_list()
        return 0
    if args.command == "trace":
        return _command_trace(args)
    executor = _executor(args)
    code = 0
    if args.command == "run":
        _command_run(args, executor)
    elif args.command == "compare":
        _command_compare(args, executor)
    elif args.command == "fig9":
        _command_fig9(args, executor)
    elif args.command == "matrix":
        code = _command_matrix(args, executor)
    elif args.command == "all":
        _command_all(args, executor)
    else:
        _command_figure(args, executor)
    _report_cache(executor)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
