"""Replays a :class:`~repro.faults.plan.FaultPlan` against a live run.

The injector owns three kinds of machinery:

* **timeline** — scripted faults (partitions, crashes, relay kills) are
  scheduled as ordinary simulator events at :meth:`start`, so they
  interleave deterministically with protocol traffic;
* **link hooks** — :meth:`unicast_hop_lost`, :meth:`extra_delay` and
  :meth:`duplicate` are consulted by :meth:`repro.net.network.Network
  .unicast` on every hop/delivery while ``network.faults`` is attached;
  Gilbert–Elliott chains live here, one per undirected link per active
  bursty-loss window;
* **partition filter** — active partitions are compiled into one edge
  predicate installed on the topology service; every change to the
  active set invalidates the cached snapshot, so the cut takes effect
  at the very instant it is scheduled.

Determinism: the two stochastic fault families draw from named streams
derived from the run seed (``faults/gilbert``, ``faults/jitter``), so a
fault-injected run is as reproducible as a fault-free one — and a run
*without* an injector attached performs no draws and schedules no events
at all, which keeps it bit-identical to the pre-fault codebase.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import BurstyLoss, DelayJitter, FaultPlan, Partition, RelayKill
from repro.mobility.terrain import Point
from repro.net.link import GilbertElliott
from repro.obs.events import (
    FaultNodeCrashed,
    FaultNodeRebooted,
    FaultPartitionEnded,
    FaultPartitionStarted,
    FaultRelayKilled,
)
from repro.sim.rng import derive_seed

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives one fault plan against one simulation.

    Parameters
    ----------
    plan:
        The fault timeline to replay.
    sim:
        The discrete-event simulator.
    network:
        The network whose unicasts and topology the faults act on; the
        caller attaches this injector as ``network.faults``.
    hosts:
        ``{node_id: MobileHost}`` — crash/reboot targets.
    metrics:
        Named-counter sink (``fault_*`` counters).
    strategy:
        The active consistency strategy; used to find relay holders for
        targeted kills (a no-op for strategies without relay roles).
    seed:
        Run seed; the stochastic fault streams are derived from it.
    terrain_width / terrain_height:
        Terrain extent in metres, for spatial partition cuts.
    degradation:
        Optional :class:`~repro.metrics.degradation.DegradationMeter`
        fed partition start/end edges.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        sim,
        network,
        hosts: Dict[int, object],
        metrics,
        strategy=None,
        seed: int = 0,
        terrain_width: float = 1.0,
        terrain_height: float = 1.0,
        degradation=None,
    ) -> None:
        self.plan = plan
        self._sim = sim
        self._network = network
        self._hosts = hosts
        self._metrics = metrics
        self._strategy = strategy
        self._degradation = degradation
        self._terrain_width = float(terrain_width)
        self._terrain_height = float(terrain_height)

        self._bursty: Tuple[BurstyLoss, ...] = plan.bursty_loss
        self._jitters: Tuple[DelayJitter, ...] = plan.jitters
        # Streams are only created when a spec can actually draw from
        # them; an all-scripted plan stays draw-free.
        self._ge_rng: Optional[random.Random] = (
            random.Random(derive_seed(seed, "faults/gilbert")) if self._bursty else None
        )
        self._jitter_rng: Optional[random.Random] = (
            random.Random(derive_seed(seed, "faults/jitter")) if self._jitters else None
        )
        # (spec index, low node, high node) -> per-link loss chain.
        self._chains: Dict[Tuple[int, int, int], GilbertElliott] = {}
        self._active_partitions: List[Partition] = []
        self._isolated: Dict[Partition, frozenset] = {
            spec: frozenset(spec.nodes)
            for spec in plan.partitions
            if spec.mode == "nodes"
        }
        # One stable callable for the topology service: the reuse fast
        # path compares filter *identity*, and a fresh bound method per
        # assignment would defeat it.
        self._edge_filter_fn = self._edge_allowed

    # ------------------------------------------------------------------
    # Timeline
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every scripted fault; call once before ``sim.run``."""
        known = self._hosts.keys()
        for spec in self.plan.crashes:
            if spec.node not in known:
                raise ConfigurationError(
                    f"fault plan crashes unknown node {spec.node!r}"
                )
        for spec in self.plan.partitions:
            for node in spec.nodes:
                if node not in known:
                    raise ConfigurationError(
                        f"fault plan partitions unknown node {node!r}"
                    )
        sim = self._sim
        for spec in self.plan.partitions:
            sim.schedule_at(spec.start, self._start_partition, spec)
        for spec in self.plan.crashes:
            sim.schedule_at(spec.at, self._crash_node, spec.node, spec.wipe_cache)
            if spec.down_for is not None:
                sim.schedule_at(spec.at + spec.down_for, self._reboot_node, spec.node)
        for spec in self.plan.relay_kills:
            sim.schedule_at(spec.at, self._kill_relays, spec)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def _start_partition(self, spec: Partition) -> None:
        self._active_partitions.append(spec)
        self._refresh_filter()
        self._metrics.bump("fault_partitions_started")
        if self._degradation is not None:
            self._degradation.on_partition_start(self._sim.now)
        trace = self._sim.trace
        if trace.enabled:
            trace.emit(
                FaultPartitionStarted(
                    time=self._sim.now, mode=spec.mode, name=spec.name
                )
            )
        self._sim.schedule(spec.duration, self._end_partition, spec)

    def _end_partition(self, spec: Partition) -> None:
        self._active_partitions.remove(spec)
        self._refresh_filter()
        self._metrics.bump("fault_partitions_healed")
        if self._degradation is not None:
            self._degradation.on_partition_end(self._sim.now)
        trace = self._sim.trace
        if trace.enabled:
            trace.emit(
                FaultPartitionEnded(
                    time=self._sim.now, mode=spec.mode, name=spec.name
                )
            )

    def _refresh_filter(self) -> None:
        topology = self._network.topology
        topology.edge_filter = (
            self._edge_filter_fn if self._active_partitions else None
        )
        # The cached snapshot was built under the previous cut (or none):
        # rebuild from scratch the moment anyone looks.
        topology.invalidate()

    def _edge_allowed(
        self, node_a: int, node_b: int, pos_a: Point, pos_b: Point
    ) -> bool:
        for spec in self._active_partitions:
            if spec.mode == "nodes":
                isolated = self._isolated[spec]
                if (node_a in isolated) != (node_b in isolated):
                    return False
            elif spec.axis == "x":
                cut = spec.frac * self._terrain_width
                if (pos_a.x >= cut) != (pos_b.x >= cut):
                    return False
            else:
                cut = spec.frac * self._terrain_height
                if (pos_a.y >= cut) != (pos_b.y >= cut):
                    return False
        return True

    # ------------------------------------------------------------------
    # Crashes and reboots
    # ------------------------------------------------------------------
    def _crash_node(self, node_id: int, wipe: bool) -> None:
        host = self._hosts[node_id]
        self._metrics.bump("fault_crashes")
        trace = self._sim.trace
        if trace.enabled:
            trace.emit(
                FaultNodeCrashed(time=self._sim.now, node=node_id, wiped=wipe)
            )
        host.crash(wipe_cache=wipe)

    def _reboot_node(self, node_id: int) -> None:
        host = self._hosts[node_id]
        self._metrics.bump("fault_reboots")
        trace = self._sim.trace
        if trace.enabled:
            trace.emit(FaultNodeRebooted(time=self._sim.now, node=node_id))
        host.reboot()

    def _kill_relays(self, spec: RelayKill) -> None:
        agents = getattr(self._strategy, "agents", None) or {}
        victims: List[int] = []
        for node_id in sorted(agents):
            roles = getattr(agents[node_id], "roles", None)
            if roles is None:
                continue  # strategy without a relay overlay (push/pull)
            host = self._hosts[node_id]
            if not host.online:
                continue  # already down; crashing a corpse is a no-op
            if spec.item is not None:
                if not roles.is_relay(spec.item):
                    continue
            elif roles.relay_count == 0:
                continue
            victims.append(node_id)
            if len(victims) >= spec.count:
                break
        if not victims:
            # Keeps mixed-strategy chaos suites honest: the same plan
            # runs under push/pull, where no relay exists to kill.
            self._metrics.bump("fault_relay_kill_noop")
            return
        trace = self._sim.trace
        for node_id in victims:
            self._metrics.bump("fault_relay_kills")
            if trace.enabled:
                for item_id in agents[node_id].roles.relay_items():
                    trace.emit(
                        FaultRelayKilled(
                            time=self._sim.now, node=node_id, item=item_id
                        )
                    )
            self._crash_node(node_id, wipe=False)
            if spec.down_for is not None:
                self._sim.schedule(spec.down_for, self._reboot_node, node_id)

    # ------------------------------------------------------------------
    # Link hooks (consulted by Network.unicast)
    # ------------------------------------------------------------------
    def unicast_hop_lost(self, node_a: int, node_b: int) -> bool:
        """Bursty-loss decision for one hop transmission ``a -> b``."""
        if not self._bursty:
            return False
        now = self._sim.now
        low, high = (node_a, node_b) if node_a < node_b else (node_b, node_a)
        for index, spec in enumerate(self._bursty):
            if now < spec.start or (spec.end is not None and now >= spec.end):
                continue
            key = (index, low, high)
            chain = self._chains.get(key)
            if chain is None:
                chain = self._chains[key] = GilbertElliott(
                    spec.p_good_bad,
                    spec.p_bad_good,
                    spec.loss_good,
                    spec.loss_bad,
                    self._ge_rng,
                )
            if chain.sample_loss():
                self._metrics.bump("fault_hops_lost_bursty")
                return True
        return False

    def extra_delay(self) -> float:
        """Additional delivery delay from every active jitter window."""
        if not self._jitters:
            return 0.0
        now = self._sim.now
        total = 0.0
        for spec in self._jitters:
            if now < spec.start or (spec.end is not None and now >= spec.end):
                continue
            if spec.max_delay > 0:
                total += self._jitter_rng.uniform(0.0, spec.max_delay)
        return total

    def duplicate(self) -> bool:
        """Should this unicast delivery be duplicated?"""
        if not self._jitters:
            return False
        now = self._sim.now
        for spec in self._jitters:
            if now < spec.start or (spec.end is not None and now >= spec.end):
                continue
            if (
                spec.duplicate_rate > 0
                and self._jitter_rng.random() < spec.duplicate_rate
            ):
                self._metrics.bump("fault_messages_duplicated")
                return True
        return False

    # ------------------------------------------------------------------
    @property
    def active_partition_count(self) -> int:
        """Partitions currently in force (tests/diagnostics)."""
        return len(self._active_partitions)
