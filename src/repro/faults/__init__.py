"""Deterministic fault injection: serializable plans + a replay engine.

See docs/ROBUSTNESS.md for the fault model, the JSON plan schema and the
degradation metrics fault-injected runs report.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BurstyLoss,
    Crash,
    DelayJitter,
    FaultPlan,
    FaultSpec,
    Partition,
    RelayKill,
)

__all__ = [
    "BurstyLoss",
    "Crash",
    "DelayJitter",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "Partition",
    "RelayKill",
]
