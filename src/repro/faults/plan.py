"""Serializable fault plans: the scripted half of the fault subsystem.

A :class:`FaultPlan` is a declarative timeline of adverse conditions —
bursty link loss, network partitions, node crashes, relay kills, delay
jitter — that a :class:`~repro.faults.injector.FaultInjector` replays
against a running simulation.  Plans are plain frozen dataclasses with a
kind-tagged JSON round-trip, so they can be committed next to the
experiments that use them (``examples/faults/``), diffed in review, and
hashed into the result-cache key: two sweeps that differ only in their
fault plan never share cache entries.

Determinism contract: the plan contributes *no* randomness of its own.
Scripted times fire through the simulator's event queue; the stochastic
faults (Gilbert–Elliott loss, jitter, duplication) draw from named
streams derived from the run seed inside the injector.  An empty plan —
or ``faults=None`` on the config — schedules nothing and creates no
streams, which keeps fault-free runs bit-identical to the seed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError

__all__ = [
    "BurstyLoss",
    "Crash",
    "DelayJitter",
    "FaultPlan",
    "FaultSpec",
    "Partition",
    "RelayKill",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class BurstyLoss:
    """Gilbert–Elliott two-state bursty loss on every unicast hop.

    While active (``start <= t < end``, open-ended when ``end`` is None)
    each undirected link carries an independent two-state Markov chain:
    ``good`` drops packets with probability ``loss_good``, ``bad`` with
    ``loss_bad``; the chain flips good->bad with ``p_good_bad`` and
    bad->good with ``p_bad_good`` after every transmission.  This is the
    classic burst-loss model for fading radio channels — short windows
    where a link is near-dead, not a uniform coin flip per packet.
    """

    start: float = 0.0
    end: Optional[float] = None
    p_good_bad: float = 0.05
    p_bad_good: float = 0.3
    loss_good: float = 0.0
    loss_bad: float = 0.5

    def __post_init__(self) -> None:
        _require(self.start >= 0, f"bursty_loss start must be >= 0, got {self.start!r}")
        _require(
            self.end is None or self.end > self.start,
            f"bursty_loss end must exceed start, got {self.end!r}",
        )
        for name in ("p_good_bad", "p_bad_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            _require(
                0.0 <= value <= 1.0,
                f"bursty_loss {name} must be in [0, 1], got {value!r}",
            )


@dataclass(frozen=True)
class Partition:
    """A network partition applied through the topology service.

    ``mode="spatial"`` cuts the terrain with a line orthogonal to
    ``axis`` at ``frac`` of the terrain extent: edges crossing the cut
    are suppressed, splitting the MANET into two geographic halves.
    ``mode="nodes"`` isolates the named node set: edges between a listed
    node and any unlisted node are suppressed (the island keeps its own
    internal links).  The cut heals after ``duration`` seconds.
    """

    start: float = 0.0
    duration: float = 60.0
    mode: str = "spatial"
    axis: str = "x"
    frac: float = 0.5
    nodes: Tuple[int, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        _require(self.start >= 0, f"partition start must be >= 0, got {self.start!r}")
        _require(
            self.duration > 0,
            f"partition duration must be positive, got {self.duration!r}",
        )
        _require(
            self.mode in ("spatial", "nodes"),
            f"partition mode must be 'spatial' or 'nodes', got {self.mode!r}",
        )
        if self.mode == "spatial":
            _require(
                self.axis in ("x", "y"),
                f"partition axis must be 'x' or 'y', got {self.axis!r}",
            )
            _require(
                0.0 < self.frac < 1.0,
                f"partition frac must be in (0, 1), got {self.frac!r}",
            )
        else:
            _require(
                len(self.nodes) > 0,
                "partition mode 'nodes' requires a non-empty node list",
            )
        object.__setattr__(self, "nodes", tuple(int(n) for n in self.nodes))

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class Crash:
    """Abrupt crash of one node at ``at``, optionally rebooting later.

    ``wipe_cache=False`` models a power-cycle whose storage survives
    (the copy is still there on reboot, possibly stale); ``True`` models
    a node whose cache did not survive — every cached copy is dropped
    through the normal eviction hooks.  ``down_for=None`` means the node
    never reboots.  The master copy at a source host always survives.
    """

    node: int = 0
    at: float = 0.0
    down_for: Optional[float] = None
    wipe_cache: bool = False

    def __post_init__(self) -> None:
        _require(self.node >= 0, f"crash node must be >= 0, got {self.node!r}")
        _require(self.at >= 0, f"crash at must be >= 0, got {self.at!r}")
        _require(
            self.down_for is None or self.down_for > 0,
            f"crash down_for must be positive or None, got {self.down_for!r}",
        )


@dataclass(frozen=True)
class RelayKill:
    """Crash up to ``count`` live relay peers at ``at`` (RPCC-targeted).

    Victims are the first ``count`` online agents (in node-id order)
    currently holding a relay role — for ``item`` when given, for any
    item otherwise.  Caches are retained (a relay kill is a crash, not a
    wipe); each victim reboots ``down_for`` seconds later when set.
    Under push/pull no node has a relay role, so the fault is a counted
    no-op — the same plan can drive every strategy.
    """

    at: float = 0.0
    count: int = 1
    down_for: Optional[float] = None
    item: Optional[int] = None

    def __post_init__(self) -> None:
        _require(self.at >= 0, f"relay_kill at must be >= 0, got {self.at!r}")
        _require(self.count >= 1, f"relay_kill count must be >= 1, got {self.count!r}")
        _require(
            self.down_for is None or self.down_for > 0,
            f"relay_kill down_for must be positive or None, got {self.down_for!r}",
        )


@dataclass(frozen=True)
class DelayJitter:
    """Extra per-message delay and duplication on unicast deliveries.

    While active every unicast delivery is delayed by an extra uniform
    draw from ``[0, max_delay]``; with probability ``duplicate_rate``
    the message is additionally delivered twice (the duplicate one hop
    delay later), exercising the protocols' idempotency.
    """

    start: float = 0.0
    end: Optional[float] = None
    max_delay: float = 0.05
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        _require(self.start >= 0, f"delay_jitter start must be >= 0, got {self.start!r}")
        _require(
            self.end is None or self.end > self.start,
            f"delay_jitter end must exceed start, got {self.end!r}",
        )
        _require(
            self.max_delay >= 0,
            f"delay_jitter max_delay must be >= 0, got {self.max_delay!r}",
        )
        _require(
            0.0 <= self.duplicate_rate < 1.0,
            f"delay_jitter duplicate_rate must be in [0, 1), got {self.duplicate_rate!r}",
        )


FaultSpec = Union[BurstyLoss, Partition, Crash, RelayKill, DelayJitter]

#: JSON ``kind`` tag -> spec class (mirrors ``EVENT_TYPES`` in obs.events).
FAULT_KINDS: Dict[str, type] = {
    "bursty_loss": BurstyLoss,
    "partition": Partition,
    "crash": Crash,
    "relay_kill": RelayKill,
    "delay_jitter": DelayJitter,
}
_KIND_OF = {cls: kind for kind, cls in FAULT_KINDS.items()}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, serializable timeline of fault specs.

    Hashing note: the plan participates in the result-cache key through
    ``dataclasses.asdict`` on the owning :class:`SimulationConfig`, so
    every field of every spec is content-addressed automatically.
    """

    faults: Tuple[FaultSpec, ...] = ()
    name: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            _require(
                type(spec) in _KIND_OF,
                f"unknown fault spec type {type(spec).__name__!r}",
            )

    # -- typed views ---------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.faults

    def of_kind(self, cls: type) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.faults if isinstance(spec, cls))

    @property
    def bursty_loss(self) -> Tuple[BurstyLoss, ...]:
        return self.of_kind(BurstyLoss)  # type: ignore[return-value]

    @property
    def partitions(self) -> Tuple[Partition, ...]:
        return self.of_kind(Partition)  # type: ignore[return-value]

    @property
    def crashes(self) -> Tuple[Crash, ...]:
        return self.of_kind(Crash)  # type: ignore[return-value]

    @property
    def relay_kills(self) -> Tuple[RelayKill, ...]:
        return self.of_kind(RelayKill)  # type: ignore[return-value]

    @property
    def jitters(self) -> Tuple[DelayJitter, ...]:
        return self.of_kind(DelayJitter)  # type: ignore[return-value]

    # -- JSON round-trip -----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Kind-tagged plain-dict form (stable across sessions)."""
        return {
            "name": self.name,
            "description": self.description,
            "faults": [
                {"kind": _KIND_OF[type(spec)], **asdict(spec)}
                for spec in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; rejects unknown kinds and fields."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        raw_faults = data.get("faults", [])
        if not isinstance(raw_faults, Iterable) or isinstance(raw_faults, (str, bytes)):
            raise ConfigurationError("fault plan 'faults' must be a list")
        specs = []
        for index, entry in enumerate(raw_faults):
            if not isinstance(entry, Mapping):
                raise ConfigurationError(
                    f"fault #{index} must be a JSON object, got {entry!r}"
                )
            fields = dict(entry)
            kind = fields.pop("kind", None)
            spec_cls = FAULT_KINDS.get(kind)
            if spec_cls is None:
                raise ConfigurationError(
                    f"fault #{index} has unknown kind {kind!r}; "
                    f"expected one of {sorted(FAULT_KINDS)}"
                )
            if kind == "partition" and "nodes" in fields:
                fields["nodes"] = tuple(fields["nodes"])
            try:
                specs.append(spec_cls(**fields))
            except TypeError as exc:
                raise ConfigurationError(
                    f"fault #{index} ({kind}): {exc}"
                ) from exc
        return cls(
            faults=tuple(specs),
            name=str(data.get("name", "")),
            description=str(data.get("description", "")),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan {path!s}: {exc}") from exc
        return cls.from_json(text)
