"""Hotspot diff: compare a cProfile run against a committed baseline.

``repro run --profile OUT.pstats`` dumps raw pstats data.  This helper
turns such dumps into a stable per-function hotspot table and diffs two
of them, so a perf PR can answer "which functions got faster, which got
slower, and what is new on the profile" without eyeballing two
``print_stats`` listings side by side.

Function keys are normalised to ``<relative-path>:<line>(<name>)`` with
absolute prefixes up to ``src/`` (or the last path component for code
outside the repo) stripped, so a summary JSON exported on one machine
diffs cleanly against a profile taken on another.  That makes the JSON
form committable as a hotspot baseline next to the ``BENCH_*.json``
timing baselines::

    PYTHONPATH=src python -m repro run rpcc-hy --profile now.pstats
    python benchmarks/profile_diff.py --dump benchmarks/PROFILE_run.json now.pstats
    # ... later, after an optimisation ...
    python benchmarks/profile_diff.py benchmarks/PROFILE_run.json now.pstats

Either side of the diff may be a ``.pstats`` dump or a previously
``--dump``-ed JSON summary.  Timings are wall-clock seconds, so treat
small deltas as noise — the tool is for *shape* changes (a leaf that
doubled, a hot spot that vanished), not micro-regression gating; the
gated timing baselines in ``run_bench.py`` do that job.
"""

from __future__ import annotations

import argparse
import json
import pstats
import sys
from typing import Dict, Tuple

#: Per-function profile row: (call count, total/self seconds, cumulative
#: seconds).  Primitive-call counts are dropped — they add noise to the
#: diff and never change which functions are hot.
Row = Tuple[int, float, float]


def normalise_key(filename: str, lineno: int, func: str) -> str:
    """Stable, machine-independent key for one profiled function."""
    path = filename.replace("\\", "/")
    for anchor in ("/src/", "/benchmarks/", "/tests/"):
        index = path.rfind(anchor)
        if index >= 0:
            path = path[index + 1:]
            break
    else:
        # Builtins look like "~"; foreign code keeps its basename only.
        path = path.rsplit("/", 1)[-1]
    return f"{path}:{lineno}({func})"


def load_summary(path: str) -> Dict[str, Row]:
    """Load a hotspot table from a ``.pstats`` dump or a ``--dump`` JSON."""
    if path.endswith(".json"):
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        return {key: tuple(row) for key, row in payload["functions"].items()}
    stats = pstats.Stats(path)
    table: Dict[str, Row] = {}
    for (filename, lineno, func), row in stats.stats.items():  # type: ignore[attr-defined]
        calls, _primitive, tottime, cumtime = row[0], row[1], row[2], row[3]
        key = normalise_key(filename, lineno, func)
        if key in table:  # same function via two import paths: merge
            old = table[key]
            table[key] = (old[0] + calls, old[1] + tottime, max(old[2], cumtime))
        else:
            table[key] = (calls, tottime, cumtime)
    return table


def dump_summary(table: Dict[str, Row], out_path: str, top: int) -> None:
    """Write the ``top`` hottest functions (by self time) as JSON."""
    hottest = sorted(table.items(), key=lambda item: item[1][1], reverse=True)[:top]
    payload = {
        "format": "repro-profile-summary/1",
        "functions": {key: list(row) for key, row in hottest},
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def diff(
    baseline: Dict[str, Row],
    current: Dict[str, Row],
    sort: str = "tottime",
    top: int = 25,
) -> str:
    """Render the hotspot diff as an aligned text table."""
    column = 1 if sort == "tottime" else 2
    keys = set(baseline) | set(current)
    rows = []
    for key in keys:
        base = baseline.get(key)
        cur = current.get(key)
        base_secs = base[column] if base else 0.0
        cur_secs = cur[column] if cur else 0.0
        delta = cur_secs - base_secs
        rows.append((abs(delta), delta, base, cur, key))
    rows.sort(reverse=True)
    lines = [
        f"{'baseline':>10} {'current':>10} {'delta':>10}  {sort} by function",
        "-" * 72,
    ]
    for _, delta, base, cur, key in rows[:top]:
        base_text = f"{base[column]:10.4f}" if base else f"{'--':>10}"
        cur_text = f"{cur[column]:10.4f}" if cur else f"{'--':>10}"
        marker = " NEW" if base is None else (" GONE" if cur is None else "")
        lines.append(f"{base_text} {cur_text} {delta:+10.4f}  {key}{marker}")
    base_total = sum(row[1] for row in baseline.values())
    cur_total = sum(row[1] for row in current.values())
    lines.append("-" * 72)
    lines.append(
        f"{base_total:10.4f} {cur_total:10.4f} {cur_total - base_total:+10.4f}"
        "  total self time"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline",
                        help=".pstats dump or committed JSON summary")
    parser.add_argument("current", nargs="?",
                        help=".pstats dump or JSON summary to compare "
                        "(omit with --dump to just export the baseline)")
    parser.add_argument("--sort", default="tottime",
                        choices=("tottime", "cumulative"),
                        help="which timing column to diff (default tottime)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows to print / functions to dump (default 25)")
    parser.add_argument("--dump", metavar="OUT.json",
                        help="export the *last* positional argument as a "
                        "committable JSON summary instead of diffing")
    args = parser.parse_args(argv)

    if args.dump:
        source = args.current if args.current else args.baseline
        dump_summary(load_summary(source), args.dump, args.top)
        print(f"profile summary: {source} -> {args.dump}")
        return 0
    if not args.current:
        parser.error("a second profile is required unless --dump is given")
    print(diff(load_summary(args.baseline), load_summary(args.current),
               sort=args.sort, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
