"""Online-controller benchmarks: observation must be near-free.

Three shapes of the same chaos-scale run (20 peers, 3+1 simulated
minutes, RPCC strong, short switching interval so relays actually form):

* **off** — ``controller=None``: the guard path every production run
  takes.  No controller object exists; the startup batch never arms a
  tick timer and no named ``"controller"`` RNG stream is drawn, so this
  arm is bit-identical to pre-controller builds (the golden digest
  suites hold that exactly; the entry here tracks the wall-clock side).
* **static** — the no-op policy: the full sampling loop runs every tick
  (metric deltas, degradation snapshot, host CAR/CS/CE means) but no
  decision ever actuates.  This prices pure observation — the overhead
  an operator pays just to *watch* a healthy system.
* **hysteresis-chaos** — the adaptive policy under the shipped east-west
  partition plan: sampling plus real actuations through the strategy
  seams, the full closed loop the adaptive-vs-static campaign runs.

``run_bench.py --suite control`` gates all three against
``BENCH_control.json``; the pytest entry points assert the correctness
side (static sampling is observationally free) and hold the fault-free
controller overhead to the 5% budget.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, List, Optional, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.faults import FaultPlan

from benchmarks.conftest import bench_config

CONTROL_SPEC = "rpcc-sc"
EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples" / "faults"


def control_config(
    controller: Optional[str] = None, plan: Optional[FaultPlan] = None
) -> SimulationConfig:
    """Chaos-suite scale: small enough to repeat, relays form in-window."""
    return bench_config(
        n_peers=20,
        sim_time=180.0,
        warmup=60.0,
        terrain_width=1000.0,
        terrain_height=1000.0,
        switch_interval=60.0,
        faults=plan,
        controller=controller,
    )


def run_with_controller(
    controller: Optional[str], plan: Optional[FaultPlan] = None
):
    return build_simulation(
        control_config(controller, plan), CONTROL_SPEC, "standard"
    ).run()


def _plan(name: str) -> FaultPlan:
    return FaultPlan.load(EXAMPLES / f"{name}.json")


def control_benchmarks(workdir: str) -> List[Tuple[str, Callable[[], None]]]:
    """Name -> one-iteration callable for every gated control benchmark."""
    partition = _plan("partition")
    return [
        ("control_off_run", lambda: run_with_controller(None)),
        ("control_static_run", lambda: run_with_controller("static")),
        ("control_hysteresis_chaos_run",
         lambda: run_with_controller("hysteresis", partition)),
    ]


def control_overheads(results) -> dict:
    """Derive the observation/closed-loop cost ratios from the timings."""
    off = results.get("control_off_run")
    overheads = {}
    if not off:
        return overheads
    static = results.get("control_static_run")
    hysteresis = results.get("control_hysteresis_chaos_run")
    if static:
        overheads["static_sampling_overhead"] = static / off
    if hysteresis:
        overheads["hysteresis_chaos_overhead"] = hysteresis / off
    return overheads


# ----------------------------------------------------------------------
# pytest entry points: correctness first, measured overhead printed.


def _best_of(fn, repeats: int = 5) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_static_sampling_is_observationally_free():
    """The no-op policy samples every window yet perturbs nothing.

    Sampling is pull-based (metric deltas and degradation snapshots);
    the only extra events are the controller's own ticks and its RNG is
    the named ``"controller"`` stream — so the metrics summary must be
    *equal*, not merely close, to the controller-less run.
    """
    off = run_with_controller(None)
    static = run_with_controller("static")
    assert static.summary == off.summary
    assert static.control_decisions == []


def test_fault_free_controller_overhead_is_bounded(capsys):
    """Watching a healthy system must cost at most 5% wall-clock."""
    off = _best_of(lambda: run_with_controller(None))
    static = _best_of(lambda: run_with_controller("static"))
    print(f"\n  controller off   {off * 1e3:9.1f} ms")
    print(f"  static sampling  {static * 1e3:9.1f} ms "
          f"({static / off:5.2f}x)")
    assert static < off * 1.05


def test_adaptive_loop_overhead_is_bounded(capsys):
    """The full closed loop under chaos stays within the fault budget.

    The hysteresis arm pays for the partition plan *and* the actuations;
    the fault suite already bounds injected chaos at 3x fault-free, so
    the adaptive loop on top must stay inside the same envelope.
    """
    off = _best_of(lambda: run_with_controller(None))
    adaptive = _best_of(
        lambda: run_with_controller("hysteresis", _plan("partition"))
    )
    print(f"\n  controller off   {off * 1e3:9.1f} ms")
    print(f"  adaptive chaos   {adaptive * 1e3:9.1f} ms "
          f"({adaptive / off:5.2f}x)")
    assert adaptive < off * 3.0
