"""Scaling benchmarks: the vectorized core against the scalar core.

Each benchmark runs one short RPCC simulation at 1k/5k/10k peers with
the struct-of-arrays fast path either forced on (``REPRO_SOA=1``) or
forced off (``REPRO_SOA=0``) and reports the wall-clock seconds of the
**run phase only** — ``Simulation.run()`` from a freshly built world.
Building the world (host registration, placement, RNG stream derivation)
is identical O(n) setup work on both arms, so timing it would only
dilute the per-quantum speedup the fast path exists to deliver; the
benchmarks are therefore *self-timing* (``run_bench.py`` calls them via
``measure_returned`` instead of timing the call).

The configuration is chosen to keep the run phase topology-dominated —
the regime the paper's larger deployments live in, and the one the
vectorized core targets:

* random-walk mobility resamples every node each epoch, so every quantum
  rebuilds the snapshot (the mobility + adjacency hot loop, not the
  incremental patch path, is what scales with n);
* the ``single_source`` scenario keeps setup O(n) and the protocol load
  light (one update source, sparse queries), so protocol handlers do not
  drown the per-quantum core being compared;
* long RPCC timers (TTN/TTR/TTP) keep invalidation floods rare for the
  same reason.

Both arms produce bit-identical results — :func:`verify_identity`
asserts it on the event count and the full metrics summary, and is run
by the benchmark tests and the CI smoke job.

``run_bench.py --suite scale`` gates all six timings against
``BENCH_scale.json`` and derives the per-scale speedups into the
baseline metadata via :func:`scale_speedups`.
"""

from __future__ import annotations

import math
import os
import time
from typing import Callable, Dict, List, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.net import soa

SCALES = (1_000, 5_000, 10_000)
SPEC = "rpcc-hy"
SIM_TIME = 30.0


def scale_config(n_peers: int, sim_time: float = SIM_TIME) -> SimulationConfig:
    """The topology-dominated scaling configuration at ``n_peers``.

    Terrain grows with ``sqrt(n)`` to hold the paper's density (50 nodes
    per 1500 m square), so per-node degree — and therefore per-quantum
    adjacency work — stays comparable across scales.
    """
    side = 1500.0 * math.sqrt(n_peers / 50.0)
    return SimulationConfig(
        n_peers=n_peers,
        terrain_width=side,
        terrain_height=side,
        sim_time=sim_time,
        warmup=0.0,
        seed=7,
        mobility="walk",
        stable_fraction=0.1,
        ttn=3600.0,
        ttr=2700.0,
        ttp=7200.0,
        query_interval=float(n_peers),
        update_interval=1000.0,
    )


def _run_once(n_peers: int, vectorized: bool, sim_time: float = SIM_TIME):
    """Build and run one simulation on the chosen core.

    Returns ``(run_seconds, result)``; only ``Simulation.run()`` is
    inside the timed region.
    """
    saved = os.environ.get("REPRO_SOA")
    os.environ["REPRO_SOA"] = "1" if vectorized else "0"
    try:
        simulation = build_simulation(
            scale_config(n_peers, sim_time), SPEC, scenario="single_source"
        )
        expected = "vectorized" if vectorized else "scalar"
        if simulation.network.core != expected:  # pragma: no cover - env guard
            raise RuntimeError(
                f"asked for the {expected} core but got "
                f"{simulation.network.core} (numpy missing?)"
            )
        started = time.perf_counter()
        result = simulation.run()
        elapsed = time.perf_counter() - started
    finally:
        if saved is None:
            os.environ.pop("REPRO_SOA", None)
        else:
            os.environ["REPRO_SOA"] = saved
    return elapsed, result


def _make_scale_bench(n_peers: int, vectorized: bool) -> Callable[[], float]:
    def run() -> float:
        return _run_once(n_peers, vectorized)[0]

    return run


def verify_identity(n_peers: int = 1_000, sim_time: float = 10.0) -> None:
    """Assert both cores produce bit-identical results at ``n_peers``.

    Compares the processed-event count and the full metrics summary of
    one scalar and one vectorized run of the same configuration.
    """
    _, vec = _run_once(n_peers, vectorized=True, sim_time=sim_time)
    _, ref = _run_once(n_peers, vectorized=False, sim_time=sim_time)
    if vec.events_processed != ref.events_processed or vec.summary != ref.summary:
        raise AssertionError(
            f"cores diverged at n={n_peers}: "
            f"events {vec.events_processed} vs {ref.events_processed}"
        )


def scale_benchmarks(workdir: str) -> List[Tuple[str, Callable[[], float]]]:
    """Name -> self-timing callable for every gated scale benchmark.

    Without numpy (the ``perf`` extra) only the scalar arm exists; the
    vectorized entries are omitted and the gate treats them as missing
    (which never fails the comparison).
    """
    benches: List[Tuple[str, Callable[[], float]]] = []
    for n_peers in SCALES:
        benches.append(
            (f"scale_run_scalar_{n_peers}", _make_scale_bench(n_peers, False))
        )
        if soa.HAVE_NUMPY:
            benches.append(
                (f"scale_run_vectorized_{n_peers}", _make_scale_bench(n_peers, True))
            )
    return benches


#: The committed 10k-node vectorized run-phase seconds *before* the
#: timer-wheel engine and message fast path landed (the PR-6 baseline,
#: measured on the same reference machine).  The engine PR's acceptance
#: bar — held by the committed-target test — is >= 2x over this number.
PR6_VECTORIZED_10000 = 2.4789593999994395


def scale_speedups(results: Dict[str, float]) -> Dict[str, float]:
    """Derive the per-scale vectorized speedups from the timings."""
    ratios: Dict[str, float] = {}
    for n_peers in SCALES:
        scalar = results.get(f"scale_run_scalar_{n_peers}")
        vectorized = results.get(f"scale_run_vectorized_{n_peers}")
        if scalar and vectorized:
            ratios[f"vectorized_speedup_{n_peers}"] = scalar / vectorized
    vec_10k = results.get("scale_run_vectorized_10000")
    if vec_10k:
        ratios["engine_speedup_vs_pr6"] = PR6_VECTORIZED_10000 / vec_10k
    return ratios
