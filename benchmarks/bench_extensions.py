"""Benches for the Section 6 future-work extensions.

* adaptive TTN/TTP vs stock RPCC under a bursty update workload;
* relay-population control: capped vs uncapped relay tables;
* multi-writer replica consistency: gossip convergence time and cost.
"""

import random

import pytest

from repro.experiments.runner import build_simulation, run_simulation
from repro.extensions.adaptive import AdaptiveConfig, AdaptiveRPCCStrategy
from repro.extensions.relay_control import ControlledConfig, ControlledRPCCStrategy
from repro.extensions.replica import GossipReplication
from repro.metrics.report import format_table
from repro.mobility.stationary import Stationary
from repro.mobility.terrain import Point, Terrain
from repro.net.network import Network
from repro.peers.host import MobileHost
from repro.sim.engine import Simulator

from benchmarks.bench_ablations import _rpcc_config, _run_with_strategy
from benchmarks.conftest import bench_config


def test_ext_adaptive_pull(benchmark, quick_config):
    """Future work 1: adaptive push/pull frequency vs fixed timers."""

    def run():
        stock = run_simulation(quick_config, "rpcc-sc")
        adaptive = _run_with_strategy(
            quick_config,
            lambda ctx: AdaptiveRPCCStrategy(
                ctx, AdaptiveConfig(**_rpcc_config(quick_config))
            ),
        )
        return stock, adaptive

    stock, adaptive = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ("variant", "tx", "stale", "latency"),
        [
            ("fixed timers (paper)", stock.summary.transmissions,
             stock.summary.stale_ratio, stock.summary.mean_latency),
            ("adaptive TTN/TTP", adaptive.summary.transmissions,
             adaptive.summary.stale_ratio, adaptive.summary.mean_latency),
        ],
        title="Extension: adaptive push/pull frequency",
    ))
    assert adaptive.summary.queries_answered > 0


def test_ext_relay_control(benchmark, quick_config):
    """Future work 2: bounding the relay population."""

    def run():
        results = {}
        for cap in (1, 3, 100):
            results[cap] = _run_with_strategy(
                quick_config,
                lambda ctx, cap=cap: ControlledRPCCStrategy(
                    ctx,
                    ControlledConfig(max_relays=cap, **_rpcc_config(quick_config)),
                ),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"cap={cap}", r.mean_relay_count, r.summary.transmissions,
         r.summary.mean_latency)
        for cap, r in sorted(results.items())
    ]
    print()
    print(format_table(("variant", "relays", "tx", "latency"), rows,
                       title="Extension: relay population control"))
    # The cap binds: an uncapped table carries at least as many relays.
    assert results[1].mean_relay_count <= results[100].mean_relay_count


def test_ext_replica_convergence(benchmark):
    """Future work 3: multi-writer replicas converging via gossip."""

    def run():
        sim = Simulator()
        # Deterministic grid placement: convergence needs a connected
        # holder set, so leave nothing to the dart board.
        network = Network(sim, radio_range=320.0)
        terrain = Terrain(600.0, 600.0)
        for node_id, point in enumerate(terrain.grid_points(2, 5)):
            host = MobileHost(node_id, sim, Stationary(point))
            network.register(host)
        replication = GossipReplication(
            sim, network, item_id=0, holders=list(range(10)),
            rng=random.Random(9), gossip_interval=15.0,
        )
        replication.start()
        # Ten conflicting writers at t=0.
        for node_id in range(10):
            replication.write(node_id, 100 + node_id)
        converged_at = None
        while sim.now < 3600.0:
            sim.run_until(sim.now + 15.0)
            if replication.converged():
                converged_at = sim.now
                break
        return replication, converged_at

    replication, converged_at = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"converged after {converged_at:.0f}s simulated, "
          f"{replication.rounds} gossip rounds")
    assert converged_at is not None
    assert replication.distinct_values() == 1


def test_ext_uir_push(benchmark, quick_config):
    """Cited mechanism (Cao'00): UIRs between IRs trade traffic for latency."""
    from repro.extensions.uir_push import UIRPushStrategy

    def run():
        stock = run_simulation(quick_config, "push")
        uir = _run_with_strategy_push(quick_config, uir_count=4)
        return stock, uir

    def _run_with_strategy_push(config, uir_count):
        simulation = build_simulation(config, "push")
        context = simulation.strategy.context
        strategy = UIRPushStrategy(
            context, uir_count=uir_count,
            ttn=config.ttn, ttl=config.ttl_broadcast,
        )
        for host in simulation.hosts.values():
            host.agent = strategy.make_agent(host)
        simulation.strategy = strategy
        simulation.query_workload._strategy = strategy
        return simulation.run()

    stock, uir = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ("variant", "tx", "mean latency"),
        [
            ("simple push (IR only)", stock.summary.transmissions,
             stock.summary.mean_latency),
            ("push + 4 UIRs", uir.summary.transmissions,
             uir.summary.mean_latency),
        ],
        title="Extension: updated invalidation reports",
    ))
    # UIRs divide waiting latency and multiply report traffic.
    assert uir.summary.mean_latency < stock.summary.mean_latency
    assert uir.summary.transmissions > stock.summary.transmissions


def test_ablation_mobility_model(benchmark, quick_config):
    """Waypoint vs random-walk mobility: do the shapes survive?"""

    def run():
        waypoint = run_simulation(quick_config, "rpcc-sc")
        walk = run_simulation(
            quick_config.with_overrides(mobility="walk"), "rpcc-sc"
        )
        return waypoint, walk

    waypoint, walk = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ("mobility", "tx", "latency", "relays", "answered"),
        [
            ("random waypoint", waypoint.summary.transmissions,
             waypoint.summary.mean_latency, waypoint.mean_relay_count,
             waypoint.summary.queries_answered),
            ("random walk", walk.summary.transmissions,
             walk.summary.mean_latency, walk.mean_relay_count,
             walk.summary.queries_answered),
        ],
        title="Ablation: mobility model",
    ))
    for result in (waypoint, walk):
        assert result.summary.queries_answered > 0
        assert result.mean_relay_count > 0
