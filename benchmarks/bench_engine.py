"""Event-engine microbenchmarks: the timer wheel against the pure heap.

These benchmarks time the discrete-event kernel in isolation — no
network, no protocol — in the regimes the hybrid engine was built for:

* ``engine_schedule_run_100k`` — bulk schedule + run of 100k one-shot
  events with delays straddling both wheel levels and the far heap;
* ``engine_post_run_100k`` — the pooled fire-and-forget fast path
  (``Simulator.post``), the shape every network delivery takes;
* ``engine_timer_churn_wheel_50k`` / ``engine_timer_churn_heap_50k`` —
  the paper's TTR/TTP renewal workload: 1 000 long-lived timers each
  rescheduled 50 times, interleaved with clock advances.  On the wheel
  a renewal is an in-place re-slot; on the heap it is a cancel +
  push + eventual tombstone compaction.  The wheel-over-heap ratio
  lands in the baseline metadata as ``churn_speedup_wheel`` and the
  committed-target test holds it to a floor;
* ``engine_cancel_sweep_100k`` — cancel-heavy churn that forces the
  wheel's periodic bucket sweep, so sweep cost is gated too.

All benchmarks are harness-timed (``measure``), ms-scale, and
deterministic: fixed iteration counts, no RNG, no wall-clock reads
inside the workload.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.engine import Simulator

#: Timers alive at once in the churn benchmarks (the paper's cache-peer
#: population at mid scale) and renewals applied to each.
CHURN_TIMERS = 1_000
CHURN_ROUNDS = 50


def _noop() -> None:
    return None


def _bench_schedule_run_100k() -> None:
    sim = Simulator(wheel=True)
    # Delays cycle through the near slot, both wheel levels and the far
    # heap; the modulus keeps the mix fixed across runs.
    for index in range(100_000):
        band = index % 5
        if band == 0:
            delay = 0.0
        elif band == 1:
            delay = float(index % 251) * 0.25
        elif band == 2:
            delay = 60.0 + float(index % 97)
        elif band == 3:
            delay = 5_000.0 + float(index % 89) * 10.0
        else:
            delay = 20_000.0 + float(index % 83) * 100.0
        sim.schedule(delay, _noop)
    sim.run()


def _bench_post_run_100k() -> None:
    sim = Simulator(wheel=True)
    post = sim.post
    # Waves of short-delay posts with runs in between keep the freelist
    # hot: every wave after the first reuses pooled handles.
    for wave in range(10):
        for index in range(10_000):
            post(float(index % 400) * 0.05, _noop)
        sim.run()


def _make_timer_churn(wheel: bool) -> Callable[[], None]:
    def run() -> None:
        sim = Simulator(wheel=wheel)
        handles = [
            sim.schedule(10.0 + (i % 40) * 0.25, _noop) for i in range(CHURN_TIMERS)
        ]
        reschedule = sim.reschedule
        for _ in range(CHURN_ROUNDS):
            for index in range(CHURN_TIMERS):
                handles[index] = reschedule(handles[index], 10.0)
            sim.run_until(sim.now + 1.0)
        for handle in handles:
            handle.cancel()
        sim.run()

    return run


def _bench_cancel_sweep_100k() -> None:
    sim = Simulator(wheel=True)
    pending = None
    for index in range(100_000):
        fresh = sim.schedule(100.0 + float(index % 1_000) * 0.25, _noop)
        if pending is not None:
            pending.cancel()
        pending = fresh
    sim.run()


def engine_benchmarks(workdir: str) -> List[Tuple[str, Callable[[], None]]]:
    """Name -> one-iteration callable for every gated engine benchmark."""
    return [
        ("engine_schedule_run_100k", _bench_schedule_run_100k),
        ("engine_post_run_100k", _bench_post_run_100k),
        (f"engine_timer_churn_wheel_{CHURN_TIMERS * CHURN_ROUNDS // 1000}k",
         _make_timer_churn(wheel=True)),
        (f"engine_timer_churn_heap_{CHURN_TIMERS * CHURN_ROUNDS // 1000}k",
         _make_timer_churn(wheel=False)),
        ("engine_cancel_sweep_100k", _bench_cancel_sweep_100k),
    ]


def engine_speedups(results: Dict[str, float]) -> Dict[str, float]:
    """Derive the wheel-over-heap churn speedup from the timings."""
    kilo = CHURN_TIMERS * CHURN_ROUNDS // 1000
    wheel = results.get(f"engine_timer_churn_wheel_{kilo}k")
    heap = results.get(f"engine_timer_churn_heap_{kilo}k")
    if not wheel or not heap:
        return {}
    return {"churn_speedup_wheel": heap / wheel}
