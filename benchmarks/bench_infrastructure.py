"""Related-work baseline: the classical one-hop Timestamp IR scheme.

Section 2 of the paper argues why single-cell MSS schemes do not transfer
to MANETs: the broadcast is one transmission for everyone (unbeatable
traffic) but a disconnection longer than the report horizon forces a full
cache drop.  This bench runs the [Bar94] scheme on the infrastructure
substrate and measures both halves of that argument, then puts the
MANET push baseline beside it for the traffic contrast.
"""

import random

from repro.cache.item import MasterCopy
from repro.experiments.runner import run_simulation
from repro.infrastructure.mss import CellClient, MSSCell
from repro.infrastructure.timestamp_ir import TimestampScheme
from repro.metrics.report import format_table
from repro.sim.engine import Simulator

from benchmarks.conftest import bench_config


def _run_cell(disconnect_seconds: float, clients: int = 20, items: int = 20):
    """One TS run: clients query, one victim sleeps for a while."""
    sim = Simulator()
    cell = MSSCell(sim)
    rng = random.Random(7)
    for client_id in range(clients):
        cell.register_client(CellClient(client_id))
    masters = []
    for item_id in range(items):
        master = MasterCopy(item_id, source_id=-1)
        cell.install_item(master)
        masters.append(master)
    scheme = TimestampScheme(sim, cell, report_interval=20.0, history_windows=3)
    ts_clients = {c.client_id: scheme.make_client(c) for c in cell.clients}
    scheme.start()

    answered = [0]

    def issue_queries() -> None:
        for client_id, ts_client in ts_clients.items():
            if cell.client(client_id).connected:
                item = rng.randrange(items)
                ts_client.query(item, lambda v: answered.__setitem__(0, answered[0] + 1))

    # Steady query load plus periodic updates.
    for tick in range(1, 30):
        sim.schedule(tick * 30.0, issue_queries)
    for tick in range(1, 10):
        def update(tick=tick):
            master = masters[tick % items]
            master.update(sim.now)
            scheme.record_update(master)
        sim.schedule(tick * 90.0, update)

    victim = 0
    sim.schedule(100.0, cell.set_connected, victim, False)
    sim.schedule(100.0 + disconnect_seconds, cell.set_connected, victim, True)
    sim.run_until(900.0)
    return cell, scheme, ts_clients, answered[0], victim


def test_infrastructure_long_disconnection(benchmark):
    """Short sleeps survive; sleeps beyond k*L drop the whole cache."""

    def run():
        short = _run_cell(disconnect_seconds=40.0)
        long = _run_cell(disconnect_seconds=300.0)
        return short, long

    short, long = benchmark.pedantic(run, rounds=1, iterations=1)
    short_drops = short[2][short[4]].cache_drops
    long_drops = long[2][long[4]].cache_drops
    print()
    print(format_table(
        ("sleep", "cache drops (victim)", "cell tx", "queries answered"),
        [
            ("40 s (< k*L = 60 s)", short_drops, short[0].total_transmissions,
             short[3]),
            ("300 s (>> k*L)", long_drops, long[0].total_transmissions,
             long[3]),
        ],
        title="[Bar94] Timestamp IR: the long-disconnection problem",
    ))
    assert short_drops == 0
    assert long_drops >= 1


def test_infrastructure_vs_manet_traffic(benchmark):
    """One-hop broadcast vs multi-hop flooding: the Section 2 contrast."""

    def run():
        cell_run = _run_cell(disconnect_seconds=40.0)
        manet = run_simulation(
            bench_config(n_peers=20, sim_time=900.0, warmup=0.0), "push"
        )
        return cell_run, manet

    cell_run, manet = benchmark.pedantic(run, rounds=1, iterations=1)
    cell_tx = cell_run[0].total_transmissions
    print()
    print(format_table(
        ("world", "transmissions"),
        [
            ("one-hop MSS cell (TS scheme)", cell_tx),
            ("MANET simple push (20 peers)", manet.summary.transmissions),
        ],
        title="why MSS-style schemes look cheap — and why they don't transfer",
    ))
    # The broadcast cell is several times cheaper: one transmission covers
    # every client, which multi-hop flooding cannot replicate.  (At 20
    # peers the MANET is sparse and floods stay small; the gap widens
    # with density.)
    assert cell_tx * 3 < manet.summary.transmissions
