"""Ablation benches for the design choices DESIGN.md calls out.

* relay selection: CAR/CS/CE criterion vs random promotion;
* relay hold notice vs paper-faithful silence;
* eager relay refresh vs wait-for-INVALIDATION;
* TTR sensitivity: the relay freshness horizon trades traffic vs staleness;
* omega: history weighting of the coefficient EWMAs.
"""

import pytest

from repro.consistency.rpcc import RPCCConfig, RPCCStrategy
from repro.experiments.runner import build_simulation, run_simulation
from repro.extensions.selection_ablation import (
    RandomSelectionConfig,
    RandomSelectionRPCCStrategy,
)
from repro.metrics.report import format_table

from benchmarks.conftest import bench_config


def _run_with_strategy(config, strategy_factory):
    """Run a standard-scenario simulation with a custom RPCC strategy."""
    simulation = build_simulation(config, "rpcc-sc")
    # Swap the strategy wholesale before anything started.
    context = simulation.strategy.context
    strategy = strategy_factory(context)
    for host in simulation.hosts.values():
        host.agent = strategy.make_agent(host)
        for item_id in host.store.item_ids:
            host.agent.cache_peer.renew_ttp(item_id)
    simulation.strategy = strategy
    simulation.query_workload._strategy = strategy
    return simulation.run()


def _rpcc_config(config, **overrides):
    kwargs = dict(
        ttl_invalidation=config.ttl_rpcc,
        ttn=config.ttn,
        ttr=config.ttr,
        ttp=config.ttp,
        poll_timeout=config.poll_timeout,
        broadcast_ttl=config.ttl_broadcast,
        thresholds=config.thresholds,
    )
    kwargs.update(overrides)
    return kwargs


def test_ablation_selection_criterion(benchmark, quick_config):
    """Coefficient-based vs random relay promotion."""

    def run():
        stock = run_simulation(quick_config, "rpcc-sc")
        random_sel = _run_with_strategy(
            quick_config,
            lambda ctx: RandomSelectionRPCCStrategy(
                ctx,
                RandomSelectionConfig(
                    promote_prob=0.4, **_rpcc_config(quick_config)
                ),
            ),
        )
        return stock, random_sel

    stock, random_sel = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("criterion (eq 4.2.8)", stock.summary.transmissions,
         stock.summary.stale_ratio, stock.mean_relay_count),
        ("random promotion", random_sel.summary.transmissions,
         random_sel.summary.stale_ratio, random_sel.mean_relay_count),
    ]
    print()
    print(format_table(("selection", "tx", "stale", "relays"), rows,
                       title="Ablation: relay selection"))
    # Random promotion drafts unstable nodes: relays churn yet exist.
    assert random_sel.mean_relay_count > 0
    assert stock.summary.queries_answered > 0


def test_ablation_hold_notice(benchmark, quick_config):
    """POLL_HOLD notice vs paper-faithful silence during TTR dead windows."""

    def run():
        with_hold = _run_with_strategy(
            quick_config,
            lambda ctx: RPCCStrategy(
                ctx, RPCCConfig(**_rpcc_config(quick_config, relay_hold_notice=True))
            ),
        )
        without = _run_with_strategy(
            quick_config,
            lambda ctx: RPCCStrategy(
                ctx, RPCCConfig(**_rpcc_config(quick_config, relay_hold_notice=False))
            ),
        )
        return with_hold, without

    with_hold, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ("variant", "tx", "fallback broadcasts"),
        [
            ("hold notice", with_hold.summary.transmissions,
             with_hold.summary.counters.get("rpcc_poll_fallback_source", 0)),
            ("silent (paper)", without.summary.transmissions,
             without.summary.counters.get("rpcc_poll_fallback_source", 0)),
        ],
        title="Ablation: relay hold notice",
    ))
    # Silence forces more wide-broadcast escalations.
    assert (
        without.summary.counters.get("rpcc_poll_fallback_source", 0)
        >= with_hold.summary.counters.get("rpcc_poll_fallback_source", 0)
    )


def test_ablation_eager_refresh(benchmark, quick_config):
    """Eager GET_NEW on queued polls vs waiting for INVALIDATION."""

    def run():
        eager = _run_with_strategy(
            quick_config,
            lambda ctx: RPCCStrategy(
                ctx,
                RPCCConfig(**_rpcc_config(quick_config, eager_relay_refresh=True)),
            ),
        )
        lazy = _run_with_strategy(
            quick_config,
            lambda ctx: RPCCStrategy(
                ctx,
                RPCCConfig(**_rpcc_config(quick_config, eager_relay_refresh=False)),
            ),
        )
        return eager, lazy

    eager, lazy = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ("variant", "mean latency", "tx"),
        [
            ("eager GET_NEW", eager.summary.mean_latency,
             eager.summary.transmissions),
            ("wait (paper)", lazy.summary.mean_latency,
             lazy.summary.transmissions),
        ],
        title="Ablation: eager relay refresh",
    ))
    assert eager.summary.queries_answered > 0
    assert lazy.summary.queries_answered > 0


def test_ablation_ttr_sensitivity(benchmark, quick_config):
    """TTR horizon: longer trust windows save traffic, cost freshness."""

    def run():
        results = {}
        for ttr in (30.0, 90.0, 115.0):
            config = quick_config.with_overrides(ttr=ttr)
            results[ttr] = run_simulation(config, "rpcc-sc")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"TTR={ttr:.0f}s", r.summary.transmissions, r.summary.stale_ratio,
         r.summary.mean_latency)
        for ttr, r in sorted(results.items())
    ]
    print()
    print(format_table(("variant", "tx", "stale", "latency"), rows,
                       title="Ablation: TTR sensitivity"))
    for result in results.values():
        assert result.summary.queries_answered > 0


def test_ablation_omega_weighting(benchmark, quick_config):
    """The EWMA history weight's effect on relay stability."""

    def run():
        results = {}
        for omega in (0.0, 0.2, 0.8):
            config = quick_config.with_overrides(omega=omega)
            results[omega] = run_simulation(config, "rpcc-sc")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"omega={omega}", r.mean_relay_count,
         r.summary.counters.get("rpcc_demotions", 0))
        for omega, r in sorted(results.items())
    ]
    print()
    print(format_table(("variant", "relays", "demotions"), rows,
                       title="Ablation: omega history weighting"))
    for result in results.values():
        assert result.summary.queries_answered > 0


def test_ablation_routing_policy(benchmark, quick_config):
    """Per-send BFS vs DSR-style cached routing: does a route cache pay?"""

    def run():
        bfs = run_simulation(quick_config, "rpcc-sc")
        cached = run_simulation(
            quick_config.with_overrides(routing="cached"), "rpcc-sc"
        )
        return bfs, cached

    bfs, cached = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ("routing", "tx", "latency", "answered"),
        [
            ("per-send BFS (default)", bfs.summary.transmissions,
             bfs.summary.mean_latency, bfs.summary.queries_answered),
            ("DSR-style route cache", cached.summary.transmissions,
             cached.summary.mean_latency, cached.summary.queries_answered),
        ],
        title="Ablation: routing policy",
    ))
    # Cached routes may be slightly longer (stale but valid paths), so
    # traffic can differ a little; answered-rate must hold either way.
    for result in (bfs, cached):
        assert result.summary.queries_answered > 0
    ratio = cached.summary.transmissions / bfs.summary.transmissions
    assert 0.8 < ratio < 1.3


def test_ablation_cache_on_read(benchmark, quick_config):
    """Read-through caching churns items out from under their relay roles."""

    def run():
        oracle = run_simulation(quick_config, "rpcc-sc")
        churny = run_simulation(
            quick_config.with_overrides(cache_on_read=True), "rpcc-sc"
        )
        return oracle, churny

    oracle, churny = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ("placement", "relays", "relay demotions+evictions", "tx"),
        [
            ("static (paper oracle)", oracle.mean_relay_count,
             oracle.summary.counters.get("rpcc_demotions", 0),
             oracle.summary.transmissions),
            ("read-through caching", churny.mean_relay_count,
             churny.summary.counters.get("rpcc_demotions", 0),
             churny.summary.transmissions),
        ],
        title="Ablation: cache-on-read churn (DESIGN.md deviation 2)",
    ))
    for result in (oracle, churny):
        assert result.summary.queries_answered > 0
