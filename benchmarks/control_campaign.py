"""The adaptive-vs-static chaos campaign and its committed artifact.

Extends the 40-cell chaos matrix (4 shipped fault plans x 5 strategy
specs x 2 seeds) into an 80-run controller comparison: every cell runs
once under the ``static`` policy (full sampling cost, no actuation) and
once under ``hysteresis``.  Every run is traced and replayed through the
:class:`~repro.obs.checker.InvariantChecker` — the campaign is only
valid when *all 80 traces* are violation-free.

The committed artifact ``benchmarks/CONTROL_campaign.json`` records the
per-cell numbers and the aggregate comparison.  The regression gate
(``tests/test_control_campaign.py``) asserts the graceful-degradation
guarantees *from the artifact* — adaptive dominates or matches static on

* availability (answered / issued),
* stale-serve rate while partitioned, and
* mean time to reconverge after a heal,

within tolerance — and re-runs one cell bit-exactly to prove the
artifact still describes the code.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python -m benchmarks.control_campaign --write
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import Dict, List, Optional

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.faults import FaultPlan
from repro.obs import InvariantChecker, ListSink, TraceBus

ARTIFACT = pathlib.Path(__file__).resolve().parent / "CONTROL_campaign.json"
EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples" / "faults"

PLANS = ("partition", "bursty_loss", "relay_kill", "crash_reboot")
SPECS = ("push", "pull", "rpcc-sc", "rpcc-dc", "rpcc-wc")
SEEDS = (7, 11)
POLICIES = ("static", "hysteresis")

#: Aggregate tolerances of the dominance gate.  Individual cells may
#: trade a little availability for a lot of freshness; the aggregates
#: must not.
EPS_AVAILABILITY = 0.01
EPS_STALE_RATE = 0.01
EPS_RECONVERGE = 2.0  # seconds

FLOAT_DIGITS = 9


def campaign_config(
    plan_name: str, seed: int, controller: Optional[str]
) -> SimulationConfig:
    """One chaos-matrix cell (mirrors ``tests/test_faults_chaos.py``)."""
    return SimulationConfig(
        n_peers=20,
        terrain_width=1000.0,
        terrain_height=1000.0,
        sim_time=180.0,
        warmup=60.0,
        seed=seed,
        switch_interval=60.0,
        faults=FaultPlan.load(EXAMPLES / f"{plan_name}.json"),
        controller=controller,
    )


def run_cell(plan_name: str, spec: str, seed: int, controller: str) -> Dict:
    """Run one traced cell and reduce it to the recorded numbers."""
    config = campaign_config(plan_name, seed, controller)
    bus = TraceBus()
    sink = bus.add_sink(ListSink())
    result = build_simulation(config, spec, "standard", trace=bus).run()
    bus.close()
    report = InvariantChecker(delta=config.ttp).feed_all(sink.events).finish()
    summary = result.summary
    stats = result.fault_stats
    issued = summary.queries_issued
    return {
        "plan": plan_name,
        "spec": spec,
        "seed": seed,
        "policy": controller,
        "availability": round(
            summary.queries_answered / issued if issued else 1.0, FLOAT_DIGITS
        ),
        "stale_serve_rate_in_partition": round(
            stats.get("stale_serve_rate_in_partition", 0.0), FLOAT_DIGITS
        ),
        "mean_time_to_reconverge": round(
            stats.get("mean_time_to_reconverge", 0.0), FLOAT_DIGITS
        ),
        "stale_ratio": round(summary.stale_ratio, FLOAT_DIGITS),
        "violations": len(report.violations),
        "decisions": len(result.control_decisions),
    }


def aggregate(cells: List[Dict]) -> Dict[str, Dict[str, float]]:
    """Mean per-policy numbers over every cell of the campaign."""
    out: Dict[str, Dict[str, float]] = {}
    for policy in POLICIES:
        rows = [cell for cell in cells if cell["policy"] == policy]
        out[policy] = {
            "cells": len(rows),
            "availability": round(
                sum(r["availability"] for r in rows) / len(rows), FLOAT_DIGITS
            ),
            "stale_serve_rate_in_partition": round(
                sum(r["stale_serve_rate_in_partition"] for r in rows)
                / len(rows),
                FLOAT_DIGITS,
            ),
            "mean_time_to_reconverge": round(
                sum(r["mean_time_to_reconverge"] for r in rows) / len(rows),
                FLOAT_DIGITS,
            ),
            "violations": sum(r["violations"] for r in rows),
            "decisions": sum(r["decisions"] for r in rows),
        }
    return out


def dominance_failures(aggregates: Dict[str, Dict[str, float]]) -> List[str]:
    """The graceful-degradation guarantees, as a list of broken clauses."""
    adaptive = aggregates["hysteresis"]
    static = aggregates["static"]
    failures = []
    if adaptive["violations"] or static["violations"]:
        failures.append(
            f"campaign not violation-free: adaptive={adaptive['violations']} "
            f"static={static['violations']}"
        )
    if adaptive["availability"] < static["availability"] - EPS_AVAILABILITY:
        failures.append(
            f"availability: adaptive {adaptive['availability']:.4f} < "
            f"static {static['availability']:.4f} - {EPS_AVAILABILITY}"
        )
    if (
        adaptive["stale_serve_rate_in_partition"]
        > static["stale_serve_rate_in_partition"] + EPS_STALE_RATE
    ):
        failures.append(
            "stale-serve-in-partition: adaptive "
            f"{adaptive['stale_serve_rate_in_partition']:.4f} > static "
            f"{static['stale_serve_rate_in_partition']:.4f} + {EPS_STALE_RATE}"
        )
    if (
        adaptive["mean_time_to_reconverge"]
        > static["mean_time_to_reconverge"] + EPS_RECONVERGE
    ):
        failures.append(
            "mean-time-to-reconverge: adaptive "
            f"{adaptive['mean_time_to_reconverge']:.2f}s > static "
            f"{static['mean_time_to_reconverge']:.2f}s + {EPS_RECONVERGE}s"
        )
    if adaptive["decisions"] == 0:
        failures.append("adaptive arm never actuated: the comparison is vacuous")
    return failures


def run_campaign(verbose: bool = True) -> Dict:
    cells: List[Dict] = []
    for plan_name in PLANS:
        for spec in SPECS:
            for seed in SEEDS:
                for policy in POLICIES:
                    cell = run_cell(plan_name, spec, seed, policy)
                    cells.append(cell)
                    if verbose:
                        print(
                            f"  {plan_name:12s} {spec:8s} seed{seed:3d} "
                            f"{policy:10s} avail={cell['availability']:.4f} "
                            f"stale@part={cell['stale_serve_rate_in_partition']:.4f} "
                            f"mttr={cell['mean_time_to_reconverge']:6.2f}s "
                            f"viol={cell['violations']} "
                            f"dec={cell['decisions']}"
                        )
    aggregates = aggregate(cells)
    return {
        "matrix": {
            "plans": list(PLANS),
            "specs": list(SPECS),
            "seeds": list(SEEDS),
            "policies": list(POLICIES),
        },
        "cells": cells,
        "aggregates": aggregates,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true",
        help=f"write the artifact to {ARTIFACT.name}",
    )
    args = parser.parse_args(argv)
    campaign = run_campaign()
    aggregates = campaign["aggregates"]
    for policy in POLICIES:
        agg = aggregates[policy]
        print(
            f"{policy:10s} avail={agg['availability']:.4f} "
            f"stale@part={agg['stale_serve_rate_in_partition']:.4f} "
            f"mttr={agg['mean_time_to_reconverge']:6.2f}s "
            f"violations={agg['violations']} decisions={agg['decisions']}"
        )
    failures = dominance_failures(aggregates)
    for failure in failures:
        print(f"DOMINANCE FAILURE: {failure}")
    if args.write:
        ARTIFACT.write_text(json.dumps(campaign, indent=2, sort_keys=True) + "\n")
        print(f"wrote {ARTIFACT}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
