"""100k-node vectorized smoke: a short run, digest-checked in CI.

Builds the same topology-dominated RPCC configuration as the scale
benchmarks at **100 000 peers**, runs five simulated seconds on the
vectorized core, and reduces the result to a digest (event count plus
the integer and rounded-float metrics).  The digest is compared against
the committed golden at ``tests/golden/scale_100k.json``:

* a crash, hang or memory blow-up at 100k nodes fails the job outright
  — "completes at 100k" is the first claim being smoked;
* any behavioural drift (engine fire order, topology, protocol) shows
  up as a digest mismatch, exactly like the 20-node golden matrix but
  at the scale where the timer wheel and the zero-allocation paths
  actually carry the load.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python benchmarks/smoke_scale.py --update

and commit the refreshed golden alongside the change.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, Optional, Sequence

BENCH_DIR = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))
sys.path.insert(0, str(BENCH_DIR.parent))

GOLDEN_PATH = BENCH_DIR.parent / "tests" / "golden" / "scale_100k.json"

N_PEERS = 100_000
SIM_TIME = 5.0

_INT_METRICS = (
    "transmissions", "messages", "bytes_on_air",
    "queries_issued", "queries_answered", "queries_unanswered",
)
_FLOAT_METRICS = (
    "mean_latency", "mean_hit_latency", "p95_latency",
    "local_answer_ratio", "stale_ratio", "violation_ratio",
    "mean_staleness_age",
)


def run_smoke() -> Dict[str, object]:
    """One 100k-node vectorized run reduced to its digest."""
    import os

    os.environ["REPRO_SOA"] = "1"
    from benchmarks.bench_scale import SPEC, scale_config
    from repro.experiments.runner import build_simulation

    built_at = time.perf_counter()
    simulation = build_simulation(
        scale_config(N_PEERS, sim_time=SIM_TIME), SPEC, scenario="single_source"
    )
    if simulation.network.core != "vectorized":
        raise RuntimeError("the 100k smoke needs numpy (the perf extra)")
    run_at = time.perf_counter()
    result = simulation.run()
    done_at = time.perf_counter()
    print(
        f"100k smoke: built in {run_at - built_at:.1f}s, "
        f"ran {SIM_TIME:.0f} simulated seconds in {done_at - run_at:.1f}s, "
        f"{result.events_processed} events ({result.core} core)"
    )
    summary = result.summary
    digest: Dict[str, object] = {
        "n_peers": N_PEERS,
        "sim_time": SIM_TIME,
        "events_processed": result.events_processed,
    }
    digest.update({name: getattr(summary, name) for name in _INT_METRICS})
    digest.update(
        {name: round(getattr(summary, name), 6) for name in _FLOAT_METRICS}
    )
    digest["transmissions_by_type"] = dict(
        sorted(summary.transmissions_by_type.items())
    )
    digest["counters"] = dict(sorted(summary.counters.items()))
    return digest


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the committed golden from this run instead of checking",
    )
    args = parser.parse_args(argv)
    digest = run_smoke()
    if args.update:
        GOLDEN_PATH.write_text(json.dumps(digest, indent=2, sort_keys=True) + "\n")
        print(f"golden written to {GOLDEN_PATH}")
        return 0
    if not GOLDEN_PATH.exists():
        print(f"FAIL: no committed golden at {GOLDEN_PATH}", file=sys.stderr)
        return 1
    expected = json.loads(GOLDEN_PATH.read_text())
    if digest != expected:
        drifted = sorted(
            key
            for key in set(digest) | set(expected)
            if digest.get(key) != expected.get(key)
        )
        print(f"FAIL: 100k digest drifted on {drifted}", file=sys.stderr)
        print(f"  expected: { {k: expected.get(k) for k in drifted} }",
              file=sys.stderr)
        print(f"  got:      { {k: digest.get(k) for k in drifted} }",
              file=sys.stderr)
        return 1
    print("OK: 100k digest matches the committed golden")
    return 0


if __name__ == "__main__":
    sys.exit(main())
