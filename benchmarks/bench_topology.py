"""Topology-pipeline benchmarks: incremental refresh vs from-scratch.

Each benchmark walks a :class:`~repro.net.topology.TopologyService`
through a precomputed per-quantum position schedule (mobility sampling is
hoisted out of the timed region, so the numbers isolate topology work):

* **pause-heavy** (200 and 1000 nodes) — random-waypoint motion with
  long (30-minute) pauses sampled past its initial all-moving transient:
  most quanta move only a handful of nodes, which is exactly the regime
  the incremental delta path (snapshot reuse, copy-on-write patching,
  BFS tree retention) is built for.  Paused nodes yield the *same* ``Point``
  object each quantum, as the network position ledger does in real runs.
* **churn-heavy** (200 nodes) — every node teleports every quantum, so
  each refresh exceeds the delta threshold and falls back to the
  from-scratch build.  The incremental arm must stay within ~10% of the
  plain rebuild: the diff is the only extra cost.

``run_bench.py --suite topology`` gates all six timings against
``BENCH_topology.json`` and derives the speedup/overhead ratios into the
baseline metadata via :func:`topology_speedups`.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Tuple

from repro.mobility.terrain import Point, Terrain
from repro.mobility.waypoint import RandomWaypoint
from repro.net.topology import TopologyService

RADIO_RANGE = 350.0
TICKS = 60
PAUSE = 1800.0

#: Schedules are expensive to sample (60k positions at the 1000-node
#: scale), so they are built once per process and shared by both arms.
_SCHEDULES: Dict[str, List[Dict[int, Point]]] = {}


def _scaled_terrain(count: int) -> Terrain:
    """Terrain at the paper's density (50 nodes per 1500 m square)."""
    side = 1500.0 * math.sqrt(count / 50.0)
    return Terrain(side, side)


def pause_heavy_schedule(count: int, seed: int = 7) -> List[Dict[int, Point]]:
    """Per-quantum positions of ``count`` pause-heavy waypoint nodes.

    Legs take ~100 s at 30-50 m/s across the scaled terrain while pauses
    last ``PAUSE`` (1800) s, so a node is parked ~95% of the time.  Every
    model starts a leg at t=0, which would keep the population travelling
    in synchronized waves; a random per-node phase offset staggers the
    cycles so each quantum sees the steady-state mover fraction instead
    (the fraction is asserted by the benchmark tests: it must stay under
    the service's delta threshold).  During a pause the model returns the
    same ``Point`` object every sample, which is what the network
    position ledger feeds the topology service in real runs.
    """
    key = f"pause_{count}"
    if key not in _SCHEDULES:
        terrain = _scaled_terrain(count)
        rng = random.Random(seed)
        models = [
            RandomWaypoint(
                terrain,
                random.Random(seed * 10_000 + i),
                speed_min=30.0,
                speed_max=50.0,
                pause_time=PAUSE,
            )
            for i in range(count)
        ]
        # Offsets span several full travel+pause cycles so sampling lands
        # uniformly across each node's cycle, not on the t=0 wave.
        base = 3.0 * (PAUSE + 100.0)
        phases = [base + rng.uniform(0.0, base) for _ in range(count)]
        _SCHEDULES[key] = [
            {
                i: model.position(phases[i] + tick)
                for i, model in enumerate(models)
            }
            for tick in range(TICKS)
        ]
    return _SCHEDULES[key]


def churn_heavy_schedule(count: int, seed: int = 11) -> List[Dict[int, Point]]:
    """Worst case for the delta path: every node teleports every quantum."""
    key = f"churn_{count}"
    if key not in _SCHEDULES:
        terrain = _scaled_terrain(count)
        rng = random.Random(seed)
        _SCHEDULES[key] = [
            {i: terrain.random_point(rng) for i in range(count)}
            for _ in range(TICKS)
        ]
    return _SCHEDULES[key]


def _make_refresh_bench(
    schedule: List[Dict[int, Point]], incremental: bool
) -> Callable[[], None]:
    """One iteration = a fresh service walking every quantum of ``schedule``.

    Pure refresh cost: the per-quantum query mix is covered by the kernel
    suite (route/flood bursts); here the two arms isolate what building
    each quantum's snapshot costs with and without the delta pipeline.
    """

    def run() -> None:
        clock = {"t": 0.0}
        row = {"states": schedule[0]}
        service = TopologyService(
            clock=lambda: clock["t"],
            node_states=lambda: [
                (node, pos, True) for node, pos in row["states"].items()
            ],
            radio_range=RADIO_RANGE,
            quantum=1.0,
        )
        service.incremental = incremental
        for tick, states in enumerate(schedule):
            clock["t"] = float(tick)
            row["states"] = states
            service.current()

    return run


def topology_benchmarks(workdir: str) -> List[Tuple[str, Callable[[], None]]]:
    """Name -> one-iteration callable for every gated topology benchmark."""
    pause_200 = pause_heavy_schedule(200)
    pause_1000 = pause_heavy_schedule(1000)
    churn_200 = churn_heavy_schedule(200)
    return [
        ("pause_fresh_200", _make_refresh_bench(pause_200, incremental=False)),
        ("pause_incremental_200", _make_refresh_bench(pause_200, incremental=True)),
        ("pause_fresh_1000", _make_refresh_bench(pause_1000, incremental=False)),
        ("pause_incremental_1000", _make_refresh_bench(pause_1000, incremental=True)),
        ("churn_fresh_200", _make_refresh_bench(churn_200, incremental=False)),
        ("churn_incremental_200", _make_refresh_bench(churn_200, incremental=True)),
    ]


def topology_speedups(results: Dict[str, float]) -> Dict[str, float]:
    """Derive incremental speedups (and churn overhead) from the timings."""
    ratios: Dict[str, float] = {}
    for scale in (200, 1000):
        fresh = results.get(f"pause_fresh_{scale}")
        patched = results.get(f"pause_incremental_{scale}")
        if fresh and patched:
            ratios[f"pause_speedup_{scale}"] = fresh / patched
    fresh = results.get("churn_fresh_200")
    patched = results.get("churn_incremental_200")
    if fresh and patched:
        # > 1.0 means the delta detection overhead slowed the worst case.
        ratios["churn_overhead"] = patched / fresh
    return ratios
