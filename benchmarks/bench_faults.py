"""Fault-injection benchmarks: chaos must be cheap and disabled faults free.

Four shapes of the same chaos-scale run (20 peers, 3+1 simulated minutes,
RPCC strong, short switching interval so relays actually form):

* **off** — ``faults=None``: the guard path every production run takes.
  No injector, no degradation meter, no backoff; the hooks are
  ``None``-checked attributes.  The kernel suite's tightened 5% gate is
  the primary watchdog for this path; the entry here tracks the same
  guarantee at full-simulation granularity.
* **partition** — the shipped east-west spatial partition plan: topology
  edge filtering plus degradation accounting.
* **bursty-loss** — the shipped Gilbert–Elliott + delay-jitter plan: the
  per-hop link hooks run on *every* unicast hop, the most invasive shape.
* **crash-reboot** — scheduled node outages through the host lifecycle.

``run_bench.py --suite faults`` gates all four against
``BENCH_faults.json``; the pytest entry points assert the correctness
side (disabled faults are bit-identical) and print measured overheads.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, List, Optional, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.faults import FaultPlan

from benchmarks.conftest import bench_config

FAULT_SPEC = "rpcc-sc"
EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples" / "faults"


def faults_config(plan: Optional[FaultPlan] = None) -> SimulationConfig:
    """Chaos-suite scale: small enough to repeat, relays form in-window."""
    return bench_config(
        n_peers=20,
        sim_time=180.0,
        warmup=60.0,
        terrain_width=1000.0,
        terrain_height=1000.0,
        switch_interval=60.0,
        faults=plan,
    )


def run_with_plan(plan: Optional[FaultPlan]):
    return build_simulation(faults_config(plan), FAULT_SPEC, "standard").run()


def _plan(name: str) -> FaultPlan:
    return FaultPlan.load(EXAMPLES / f"{name}.json")


def faults_benchmarks(workdir: str) -> List[Tuple[str, Callable[[], None]]]:
    """Name -> one-iteration callable for every gated fault benchmark."""
    partition = _plan("partition")
    bursty = _plan("bursty_loss")
    crash = _plan("crash_reboot")
    return [
        ("faults_off_run", lambda: run_with_plan(None)),
        ("faults_partition_run", lambda: run_with_plan(partition)),
        ("faults_bursty_loss_run", lambda: run_with_plan(bursty)),
        ("faults_crash_reboot_run", lambda: run_with_plan(crash)),
    ]


# ----------------------------------------------------------------------
# pytest entry points: correctness first, measured overhead printed.


def _best_of(fn, repeats: int = 3) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_faults_are_bit_identical_at_bench_scale():
    """faults=None and an empty plan take literally the same code path."""
    off = run_with_plan(None)
    empty = run_with_plan(FaultPlan())
    assert off.summary == empty.summary
    assert off.fault_stats == empty.fault_stats == {}


def test_fault_overhead_is_bounded(capsys):
    """Injected chaos costs something; it must never dominate the run."""
    off = _best_of(lambda: run_with_plan(None))
    partition = _best_of(lambda: run_with_plan(_plan("partition")))
    bursty = _best_of(lambda: run_with_plan(_plan("bursty_loss")))
    print(f"\n  faults off       {off * 1e3:9.1f} ms")
    print(f"  partition        {partition * 1e3:9.1f} ms "
          f"({partition / off:5.2f}x)")
    print(f"  bursty loss      {bursty * 1e3:9.1f} ms "
          f"({bursty / off:5.2f}x)")
    # Generous bounds against shared-box noise; a hot-path regression
    # (per-hop RNG draws on the fault-free path, say) would blow past
    # them.  The tight gate is run_bench.py against BENCH_faults.json.
    assert partition < off * 3.0
    assert bursty < off * 3.0
