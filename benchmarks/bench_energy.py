"""Energy consumption per strategy (the paper's Section 1 motivation).

Not a numbered figure, but an explicit claim: "the on-demand polling by
cache nodes will consume more battery power" and cooperative caching
gives "less communication overhead and energy consumption of mobile
hosts".  Battery drain is charged per transmission/reception in
:mod:`repro.energy`, so the claim is directly measurable.
"""

from repro.experiments.runner import STRATEGY_SPECS, run_simulation
from repro.metrics.report import format_table

from benchmarks.conftest import bench_config


def test_energy_by_strategy(benchmark):
    """Fleet-wide energy drain for all six strategies."""

    def run():
        return {
            spec: run_simulation(bench_config(), spec)
            for spec in STRATEGY_SPECS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            spec,
            round(result.energy_consumed, 1),
            round(result.mean_battery_fraction, 3),
            result.summary.transmissions,
        )
        for spec, result in results.items()
    ]
    print()
    print(format_table(
        ("strategy", "energy (J)", "mean battery left", "tx"),
        rows,
        title="fleet energy over the measured window",
    ))
    # The paper's claim: pull's per-query flooding burns the most energy;
    # weak-consistency RPCC the least among the protocol-bearing runs.
    assert results["pull"].energy_consumed > results["push"].energy_consumed
    assert results["pull"].energy_consumed > results["rpcc-sc"].energy_consumed
    assert (
        results["rpcc-wc"].energy_consumed
        < results["rpcc-sc"].energy_consumed
    )
    # Energy tracks transmissions: the cheapest-traffic run keeps the
    # healthiest batteries.
    cheapest = min(results.values(), key=lambda r: r.summary.transmissions)
    assert cheapest.mean_battery_fraction == max(
        r.mean_battery_fraction for r in results.values()
    )
