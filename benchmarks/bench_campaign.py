"""Campaign persistence benchmarks: per-pickle cache vs the columnar store.

The historical campaign persistence layer wrote one pickle per completed
point (two filesystem writes each: a temp file plus an atomic rename).
A thousand-point campaign therefore costs two thousand writes before a
single byte of science is read back.  The append-only columnar store
batches completed points into record batches (256 rows by default) and
commits each with a single segment append plus an atomic index-sidecar
rewrite, so the same campaign takes a dozen writes and reads back as a
handful of sequential scans.

These benchmarks time a synthetic 1000-point campaign end to end —
persist every point, reopen cold, read every point back as a usable
``SimulationResult`` — through both layers:

* ``campaign_pickle_write_read_1000`` — one ``ResultCache.put`` per
  point, then a cold ``get`` per point;
* ``campaign_store_write_read_1000`` — one ``SegmentWriter`` pass, then
  a cold ``get_many`` + ``RunRecord.to_result`` per point.

The synthetic results are generated once outside the timed region, so
the timings isolate the persistence layers themselves.  The derived
``store_speedup`` and the deterministic ``fs_write_reduction`` land in
``BENCH_campaign.json``'s metadata, where the committed-target test in
``tests/test_bench_baseline.py`` holds them to the >=5x / >=100x floors.

The pytest entry point below asserts the correctness side: both layers
hand back bit-identical campaign data.
"""

from __future__ import annotations

import itertools
import os
from typing import Callable, Dict, List, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.executor import ResultCache
from repro.experiments.store import ResultStore, RunRecord

#: Campaign size and batching for every benchmark in this module.
CAMPAIGN_POINTS = 1000
STORE_BATCH = 256

#: Filesystem writes per pickled point: the temp file plus the rename.
PICKLE_WRITES_PER_PUT = 2


def _campaign_config() -> SimulationConfig:
    return SimulationConfig(
        n_peers=10, sim_time=120.0, warmup=0.0, seed=5,
        terrain_width=800.0, terrain_height=800.0,
    )


def synthetic_record(index: int) -> RunRecord:
    """One fully populated campaign point, no simulation required."""
    return RunRecord(
        key=f"{index:064x}",
        spec="rpcc-sc",
        scenario="standard",
        seed=index,
        sim_time=120.0,
        transmissions=1000 + index,
        messages=500 + index,
        bytes_on_air=2**40 + index,
        queries_issued=60,
        queries_answered=59,
        queries_unanswered=1,
        mean_latency=0.1 + index * 1e-9,
        mean_hit_latency=0.05,
        p95_latency=0.4,
        local_answer_ratio=1 / 3,
        stale_ratio=0.0123456789012345678,
        violation_ratio=0.0,
        mean_staleness_age=7.5,
        total_queries=60,
        total_updates=12,
        energy_consumed=123.456 + index,
        mean_battery_fraction=0.87,
        wall_clock_seconds=0.25,
        events_processed=4321 + index,
        core="scalar",
        transmissions_by_type={"QueryRequest": 30 + index % 7, "POLL": 12},
        counters={"relay_promotions": index % 5},
        fault_stats={"availability": 0.991234567890123},
        topology_stats={"snapshots_built": 40},
        relay_samples=[[60.0, 4], [120.0, 5]],
        traffic_series={"name": "transmissions",
                        "times": [60.0, 120.0],
                        "values": [10.0, 12.5 + index]},
    )


def synthetic_campaign() -> List[RunRecord]:
    return [synthetic_record(i) for i in range(CAMPAIGN_POINTS)]


def _pickle_write_read(root: str, results) -> Dict:
    cache = ResultCache(root)
    for record, result in results:
        cache.put(record.key, result)
    cold = ResultCache(root)
    return {record.key: cold.get(record.key) for record, _ in results}


def _store_write_read(root: str, records, config) -> Dict:
    store = ResultStore(root)
    with store.writer(batch_size=STORE_BATCH) as writer:
        for record in records:
            writer.add(record)
    cold = ResultStore(root)
    found = cold.get_many([record.key for record in records])
    return {key: record.to_result(config) for key, record in found.items()}


def campaign_benchmarks(workdir: str) -> List[Tuple[str, Callable[[], None]]]:
    """Name -> one-iteration callable for every gated campaign benchmark.

    Both layers are append/overwrite-safe, but each timed iteration still
    gets a pristine directory under ``workdir`` so the pickle path pays
    its real per-point create cost instead of rewriting existing inodes.
    """
    config = _campaign_config()
    records = synthetic_campaign()
    results = [(record, record.to_result(config)) for record in records]
    fresh = itertools.count()

    def pickle_campaign() -> None:
        _pickle_write_read(
            os.path.join(workdir, f"pickle-{next(fresh)}"), results
        )

    def store_campaign() -> None:
        _store_write_read(
            os.path.join(workdir, f"store-{next(fresh)}"), records, config
        )

    return [
        ("campaign_pickle_write_read_1000", pickle_campaign),
        ("campaign_store_write_read_1000", store_campaign),
    ]


def campaign_write_counts() -> Dict[str, int]:
    """Deterministic filesystem-write counts for the 1000-point campaign.

    The pickle side is arithmetic (two writes per put).  The store side
    is *measured* from the writer's own accounting, so the number tracks
    the implementation instead of a hand-maintained constant.
    """
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-writes-") as root:
        store = ResultStore(os.path.join(root, "store"))
        with store.writer(batch_size=STORE_BATCH) as writer:
            for record in synthetic_campaign():
                writer.add(record)
        store_writes = store.stats["fs_writes"]
    return {
        "pickle_fs_writes": CAMPAIGN_POINTS * PICKLE_WRITES_PER_PUT,
        "store_fs_writes": store_writes,
    }


def campaign_speedups(results: Dict[str, float]) -> Dict[str, float]:
    """Derive the metadata recorded next to the raw campaign timings."""
    meta: Dict[str, float] = {}
    pickle_seconds = results.get("campaign_pickle_write_read_1000")
    store_seconds = results.get("campaign_store_write_read_1000")
    if pickle_seconds and store_seconds:
        meta["store_speedup"] = pickle_seconds / store_seconds
    counts = campaign_write_counts()
    meta["pickle_fs_writes"] = counts["pickle_fs_writes"]
    meta["store_fs_writes"] = counts["store_fs_writes"]
    meta["fs_write_reduction"] = (
        counts["pickle_fs_writes"] / counts["store_fs_writes"]
    )
    return meta


# ----------------------------------------------------------------------
# pytest entry point: both persistence layers must hand back the same
# campaign, bit for bit.


def _fingerprint(result) -> tuple:
    return (
        result.spec, result.scenario, result.config, result.summary,
        result.total_queries, result.total_updates, result.relay_samples,
        result.traffic_series.times, result.traffic_series.values,
        result.energy_consumed, result.mean_battery_fraction,
        result.topology_stats, result.fault_stats, result.core,
    )


def test_store_and_pickle_round_trips_agree(tmp_path):
    config = _campaign_config()
    records = synthetic_campaign()[:50]
    results = [(record, record.to_result(config)) for record in records]

    from_pickles = _pickle_write_read(str(tmp_path / "cache"), results)
    from_store = _store_write_read(str(tmp_path / "store"), records, config)

    assert set(from_pickles) == set(from_store)
    for (record, reference) in results:
        assert _fingerprint(from_pickles[record.key]) == _fingerprint(reference)
        assert _fingerprint(from_store[record.key]) == _fingerprint(reference)
