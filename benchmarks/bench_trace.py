"""Trace-layer benchmarks: the observability bus must be near-free.

Three shapes of the same sweep-scale run (20 peers, 3+1 simulated
minutes, RPCC strong):

* **off** — no bus attached; the emit sites see ``NULL_TRACE`` and skip
  on its ``enabled`` flag.  This is the path every figure run takes and
  the one the kernel suite's tightened 5% gate protects.
* **null-sink** — a live :class:`~repro.obs.bus.TraceBus` fanning out to
  a :class:`~repro.obs.sinks.NullSink`: full event construction and
  dispatch, no I/O.  The honest cost of *recording*.
* **jsonl** — the full export path, serialising every event to disk.

``run_bench.py --suite trace`` gates all three against
``BENCH_trace.json``; the pytest entry points assert the correctness
side (tracing never changes results) and print the measured overheads.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.obs import JsonlSink, NullSink, TraceBus

from benchmarks.conftest import bench_config

TRACE_SPEC = "rpcc-sc"


def trace_config() -> SimulationConfig:
    """The sweep-point scale: one real run, small enough to repeat."""
    return bench_config(
        n_peers=20,
        sim_time=180.0,
        warmup=60.0,
        terrain_width=1000.0,
        terrain_height=1000.0,
    )


def run_untraced():
    """The production path: no bus, emit sites short-circuit."""
    return build_simulation(trace_config(), TRACE_SPEC, "standard").run()


def run_null_sink():
    """Events built and dispatched, then discarded."""
    bus = TraceBus()
    sink = bus.add_sink(NullSink())
    result = build_simulation(trace_config(), TRACE_SPEC, "standard", trace=bus).run()
    bus.close()
    return result, sink.events_seen


def run_jsonl(path: str):
    """The full export path, JSONL to disk."""
    bus = TraceBus()
    sink = bus.add_sink(JsonlSink(path))
    result = build_simulation(trace_config(), TRACE_SPEC, "standard", trace=bus).run()
    bus.close()
    return result, sink.events_written


def trace_benchmarks(workdir: str) -> List[Tuple[str, Callable[[], None]]]:
    """Name -> one-iteration callable for every gated trace benchmark."""
    jsonl_path = os.path.join(workdir, "bench-trace.jsonl")
    return [
        ("trace_off_run", lambda: run_untraced()),
        ("trace_null_sink_run", lambda: run_null_sink()),
        ("trace_jsonl_run", lambda: run_jsonl(jsonl_path)),
    ]


# ----------------------------------------------------------------------
# pytest entry points: correctness first, measured overhead printed.


def _best_of(fn, repeats: int = 3) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_tracing_does_not_change_results(tmp_path):
    """The observer effect must be exactly zero on the metrics."""
    untraced = run_untraced()
    null_result, seen = run_null_sink()
    jsonl_result, written = run_jsonl(str(tmp_path / "t.jsonl"))
    assert null_result.summary == untraced.summary
    assert jsonl_result.summary == untraced.summary
    assert seen == written > 0


def test_disabled_trace_overhead_is_small(tmp_path):
    """With no bus attached the emit sites are one attribute check."""
    off = _best_of(run_untraced)
    null_sink = _best_of(lambda: run_null_sink())
    jsonl = _best_of(lambda: run_jsonl(str(tmp_path / "t.jsonl")))
    print(f"\n  trace off        {off * 1e3:9.1f} ms")
    print(f"  null-sink        {null_sink * 1e3:9.1f} ms "
          f"({null_sink / off:5.2f}x)")
    print(f"  jsonl            {jsonl * 1e3:9.1f} ms "
          f"({jsonl / off:5.2f}x)")
    # Generous bound: a noisy shared box must not flake this, but a
    # hot-path regression (emitting with no bus attached, say) would
    # blow far past it.  The tight 5% gate lives in run_bench.py's
    # kernel suite against the committed baseline.
    assert null_sink < off * 2.0
    assert jsonl < off * 3.0
