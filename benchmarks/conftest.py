"""Shared benchmark infrastructure.

Benchmarks regenerate every table and figure of the paper's evaluation at
a reduced (but still 50-peer) scale: a 10-minute warm-up followed by a
15-minute measured window instead of the paper's 5 hours.  The *shapes*
(who wins, by roughly what factor) are asserted; absolute numbers are
printed for comparison against EXPERIMENTS.md.

Fig 7 and Fig 8 read different metrics of the same sweeps, so sweep
results are cached per session and computed at most once.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.executor import CampaignExecutor, env_jobs
from repro.experiments.figures.base import run_axis_sweep
from repro.experiments.runner import STRATEGY_SPECS, SimulationResult


def bench_config(**kwargs) -> SimulationConfig:
    """The reduced-scale benchmark configuration (Table 1 otherwise)."""
    defaults = dict(sim_time=900.0, warmup=600.0, seed=7)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


_SWEEP_CACHE: Dict[Tuple, Dict] = {}

#: The executor behind every figure benchmark.  Serial and uncached by
#: default so timings stay honest; export ``REPRO_BENCH_JOBS=N`` to fan
#: the sweeps out on a multicore box (results are bit-identical).
_BENCH_EXECUTOR = CampaignExecutor(jobs=env_jobs("REPRO_BENCH_JOBS"))


def cached_axis_sweep(axis: str, values: tuple, specs: tuple = STRATEGY_SPECS):
    """Run (or reuse) the sweep shared by the Fig 7 / Fig 8 panels."""
    key = (axis, values, specs)
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = run_axis_sweep(
            bench_config(), axis, values, specs, executor=_BENCH_EXECUTOR
        )
    return _SWEEP_CACHE[key]


@pytest.fixture
def quick_config() -> SimulationConfig:
    """A very small config for micro/ablation benchmarks."""
    return bench_config(n_peers=30, sim_time=600.0, warmup=300.0)


def print_figure(figure) -> None:
    """Emit a reproduced figure under the benchmark output."""
    print()
    print(figure.format())


def traffic(result: SimulationResult) -> int:
    """Shorthand: hop transmissions of a run."""
    return result.summary.transmissions


def latency(result: SimulationResult) -> float:
    """Shorthand: mean answered latency of a run."""
    return result.summary.mean_latency
