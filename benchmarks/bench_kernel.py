"""Micro-benchmarks of the simulation substrates.

Not a paper figure — these keep the kernel honest: event throughput,
topology snapshot construction, BFS, and random-waypoint sampling are the
inner loops every experiment spends its time in.
"""

import random

from repro.mobility.terrain import Point, Terrain
from repro.mobility.waypoint import RandomWaypoint
from repro.net.topology import TopologySnapshot
from repro.sim.engine import Simulator


def test_event_throughput(benchmark):
    """Schedule-and-run throughput of the event kernel (10k events)."""

    def run():
        sim = Simulator()
        for index in range(10_000):
            sim.schedule(float(index % 97) * 0.1, lambda: None)
        sim.run()
        return sim.events_processed

    processed = benchmark(run)
    assert processed == 10_000


def test_timer_chain(benchmark):
    """A self-rescheduling timer chain (the protocol timer pattern)."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 5_000


def _positions(count, seed=3):
    rng = random.Random(seed)
    terrain = Terrain(1500.0, 1500.0)
    return {i: terrain.random_point(rng) for i in range(count)}


def test_snapshot_build_50_nodes(benchmark):
    """Adjacency construction for a Table-1 sized network."""
    positions = _positions(50)
    snapshot = benchmark(lambda: TopologySnapshot(positions, 350.0))
    assert snapshot.edge_count() > 0


def test_bfs_levels_50_nodes(benchmark):
    """TTL-flood reach computation (the flood hot path)."""
    snapshot = TopologySnapshot(_positions(50), 350.0)

    levels = benchmark(lambda: snapshot.bfs_levels(0, max_depth=8))
    assert 0 in levels


def test_waypoint_sampling(benchmark):
    """Position queries across 5 simulated hours."""
    terrain = Terrain(1500.0, 1500.0)
    model = RandomWaypoint(terrain, random.Random(1), 1.0, 5.0, 60.0)

    def run():
        total = 0.0
        for t in range(0, 18_000, 10):
            point = model.position(float(t))
            total += point.x
        return total

    benchmark(run)
