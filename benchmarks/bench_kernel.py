"""Micro-benchmarks of the simulation substrates.

Not a paper figure — these keep the kernel honest: event throughput,
topology snapshot construction, BFS, and random-waypoint sampling are the
inner loops every experiment spends its time in.

The ``*_scaled`` benchmarks stress the fast paths (spatial-grid adjacency
build, memoised per-source BFS, O(1) ``has_edge``) at 50/200/1000 nodes
with node density held at the paper's 50 nodes per 1500 m square.  Run
``python benchmarks/run_bench.py`` for the committed-baseline regression
gate over the same workloads.
"""

import math
import random

import pytest

from repro.mobility.terrain import Point, Terrain
from repro.mobility.waypoint import RandomWaypoint
from repro.net.topology import TopologySnapshot
from repro.sim.engine import Simulator


def test_event_throughput(benchmark):
    """Schedule-and-run throughput of the event kernel (10k events)."""

    def run():
        sim = Simulator()
        for index in range(10_000):
            sim.schedule(float(index % 97) * 0.1, lambda: None)
        sim.run()
        return sim.events_processed

    processed = benchmark(run)
    assert processed == 10_000


def test_timer_chain(benchmark):
    """A self-rescheduling timer chain (the protocol timer pattern)."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 5_000


def _positions(count, seed=3):
    rng = random.Random(seed)
    terrain = Terrain(1500.0, 1500.0)
    return {i: terrain.random_point(rng) for i in range(count)}


def test_snapshot_build_50_nodes(benchmark):
    """Adjacency construction for a Table-1 sized network."""
    positions = _positions(50)
    snapshot = benchmark(lambda: TopologySnapshot(positions, 350.0))
    assert snapshot.edge_count() > 0


def test_bfs_levels_50_nodes(benchmark):
    """TTL-flood reach computation (the flood hot path)."""
    snapshot = TopologySnapshot(_positions(50), 350.0)

    levels = benchmark(lambda: snapshot.bfs_levels(0, max_depth=8))
    assert 0 in levels


def _scaled_positions(count, seed=3):
    """Random placements at the paper's density (50 nodes / 1500 m square)."""
    side = 1500.0 * math.sqrt(count / 50.0)
    rng = random.Random(seed)
    terrain = Terrain(side, side)
    return {i: terrain.random_point(rng) for i in range(count)}


@pytest.mark.parametrize("count", [50, 200, 1000])
def test_snapshot_build_scaled(benchmark, count):
    """Spatial-grid adjacency build at constant density (was O(N^2))."""
    positions = _scaled_positions(count)
    snapshot = benchmark(lambda: TopologySnapshot(positions, 350.0))
    assert snapshot.edge_count() > 0


@pytest.mark.parametrize("count", [50, 200, 1000])
def test_unicast_route_burst_scaled(benchmark, count):
    """200 shortest-path queries against one snapshot (memoised BFS)."""
    snapshot = TopologySnapshot(_scaled_positions(count), 350.0)

    def run():
        found = 0
        for query in range(200):
            path = snapshot.shortest_path(query % 16, (query * 37) % count)
            if path is not None:
                found += 1
        return found

    assert benchmark(run) > 0


def test_flood_burst_1000_nodes(benchmark):
    """Repeated TTL-flood reach from a handful of sources (memoised BFS)."""
    snapshot = TopologySnapshot(_scaled_positions(1000), 350.0)

    def run():
        reached = 0
        for query in range(200):
            reached += len(snapshot.bfs_levels(query % 16, max_depth=8))
        return reached

    assert benchmark(run) > 0


def test_has_edge_1000_nodes(benchmark):
    """O(1) link-liveness checks (the CachingRouter validation loop)."""
    snapshot = TopologySnapshot(_scaled_positions(1000), 350.0)

    def run():
        alive = 0
        for query in range(1000):
            if snapshot.has_edge(query, (query * 13 + 7) % 1000):
                alive += 1
        return alive

    benchmark(run)


def test_waypoint_sampling(benchmark):
    """Position queries across 5 simulated hours."""
    terrain = Terrain(1500.0, 1500.0)
    model = RandomWaypoint(terrain, random.Random(1), 1.0, 5.0, 60.0)

    def run():
        total = 0.0
        for t in range(0, 18_000, 10):
            point = model.position(float(t))
            total += point.x
        return total

    benchmark(run)
