"""Fig 7 — network traffic vs update interval / query interval / cache number.

Each bench regenerates one panel's rows (all six strategy curves) and
asserts the paper's qualitative shape: pull far above everything,
RPCC-WC cheapest, RPCC-SC between pull and the push-like group.
"""

from repro.experiments.figures.fig7 import (
    CACHE_NUMBERS,
    QUERY_INTERVALS,
    UPDATE_INTERVALS,
    fig7a,
    fig7b,
    fig7c,
)
from repro.experiments.runner import STRATEGY_SPECS

from benchmarks.conftest import bench_config, cached_axis_sweep, print_figure


def _assert_fig7_shape(figure):
    for x in figure.x_values:
        pull = figure.value("pull", x)
        push = figure.value("push", x)
        sc = figure.value("rpcc-sc", x)
        wc = figure.value("rpcc-wc", x)
        assert pull > push, f"pull must out-traffic push at x={x}"
        assert pull > sc, f"RPCC-SC must save traffic vs pull at x={x}"
        assert wc < sc, f"weak RPCC must be cheaper than strong at x={x}"
        assert wc < pull / 2, f"weak RPCC must be far below pull at x={x}"


def test_fig7a(benchmark):
    """Traffic vs update interval (Fig 7a)."""
    def run():
        results = cached_axis_sweep("update_interval", UPDATE_INTERVALS)
        return fig7a(bench_config(), STRATEGY_SPECS, UPDATE_INTERVALS, results)

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    _assert_fig7_shape(figure)


def test_fig7b(benchmark):
    """Traffic vs query (request) interval (Fig 7b)."""
    def run():
        results = cached_axis_sweep("query_interval", QUERY_INTERVALS)
        return fig7b(bench_config(), STRATEGY_SPECS, QUERY_INTERVALS, results)

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    _assert_fig7_shape(figure)
    # Longer query gaps save pull the most: its curve must fall steeply.
    pull = figure.series["pull"]
    assert pull[0] > 2 * pull[-1]


def test_fig7c(benchmark):
    """Traffic vs cache number (Fig 7c)."""
    def run():
        results = cached_axis_sweep("cache_num", tuple(CACHE_NUMBERS))
        return fig7c(bench_config(), STRATEGY_SPECS, CACHE_NUMBERS, results)

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    _assert_fig7_shape(figure)
    # The paper's Fig 7(c) discussion: more cache peers shift RPCC traffic
    # from the pull share towards the push share.
    from repro.experiments.analysis import rpcc_traffic_split

    results = cached_axis_sweep("cache_num", tuple(CACHE_NUMBERS))
    small = rpcc_traffic_split(results[("rpcc-sc", CACHE_NUMBERS[0])].summary)
    large = rpcc_traffic_split(results[("rpcc-sc", CACHE_NUMBERS[-1])].summary)
    print()
    print(f"RPCC-SC push share: {small.push_share:.2f} (C_Num="
          f"{CACHE_NUMBERS[0]}) -> {large.push_share:.2f} "
          f"(C_Num={CACHE_NUMBERS[-1]})")
    assert large.push_share > small.push_share
