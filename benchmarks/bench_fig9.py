"""Fig 9 — impact of the invalidation TTL on RPCC(SC).

Single-source scenario (one item cached by every other peer), TTL swept
1..7, simple push and pull as references.  Asserted shapes: at TTL 1 the
relay population is tiny and RPCC's traffic lands in pull territory; at
larger TTLs traffic falls far below pull while the relay count and the
answered-without-delay fraction grow.
"""

import pytest

from repro.experiments.figures.fig9 import TTL_VALUES, fig9a, fig9b, run_fig9

from benchmarks.conftest import bench_config, print_figure

_PAYLOAD_CACHE = {}


def _payload():
    if "payload" not in _PAYLOAD_CACHE:
        _PAYLOAD_CACHE["payload"] = run_fig9(bench_config(), TTL_VALUES)
    return _PAYLOAD_CACHE["payload"]


def test_fig9a(benchmark):
    """Traffic vs invalidation TTL (Fig 9a)."""
    def run():
        return fig9a(bench_config(), TTL_VALUES, _payload())

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    pull = figure.value("pull", 1.0)
    push = figure.value("push", 1.0)
    low_ttl = figure.value("rpcc-sc", 1.0)
    mid_ttl = figure.value("rpcc-sc", 3.0)
    # TTL=1: hardly any relays -> polls escalate to pull-style broadcasts,
    # costing far more than the working overlay at TTL>=3.  (How close it
    # gets to pull itself depends on the random source's neighbourhood;
    # see EXPERIMENTS.md.)
    assert low_ttl > 1.5 * mid_ttl
    # The overlay always saves substantially against pure pull...
    for ttl in figure.x_values:
        assert figure.value("rpcc-sc", ttl) < pull
    # ...but polls keep RPCC above pure push.
    assert push < mid_ttl


def test_fig9b(benchmark):
    """Latency vs invalidation TTL (Fig 9b)."""
    def run():
        return fig9b(bench_config(), TTL_VALUES, _payload())

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    push = figure.value("push", 1.0)
    for ttl in figure.x_values:
        assert figure.value("rpcc-sc", ttl) < push / 2
    # More relays answer more queries without delay.
    assert figure.value("rpcc-sc", 7.0) <= figure.value("rpcc-sc", 1.0) * 1.5


def test_fig9_relay_population(benchmark):
    """The TTL's whole point: more hops heard -> more relay peers."""
    payload = benchmark.pedantic(_payload, rounds=1, iterations=1)
    rpcc = payload["rpcc"]
    relays = {ttl: rpcc[ttl].mean_relay_count for ttl in (1, 3, 7)}
    print()
    print("mean relay count by TTL:", relays)
    assert relays[1] < relays[3] <= relays[7] * 1.2
    # How steep the growth is depends on the random source's 1-hop
    # neighbourhood (see EXPERIMENTS.md); the direction is the claim.
    assert relays[7] > 1.5 * relays[1]
