"""Table 1 — simulation parameters.

Regenerates the parameter table and benchmarks how fast a full Table-1
world can be wired up (50 peers, placement, strategies, workloads).
"""

from repro.experiments.config import TABLE1_ROWS, SimulationConfig
from repro.experiments.runner import build_simulation
from repro.metrics.report import format_table

from benchmarks.conftest import bench_config


def test_table1_parameters(benchmark):
    """Print Table 1 and time the construction of a full simulation."""
    config = SimulationConfig()

    def build():
        return build_simulation(bench_config(), "rpcc-sc")

    simulation = benchmark(build)
    rows = config.table1_rows()
    print()
    print(format_table(("Parameter", "Description", "Value"), rows,
                       title="Table 1. Simulation Parameters"))
    assert [row[0] for row in rows] == TABLE1_ROWS
    assert len(simulation.hosts) == config.n_peers
