"""Fig 8 — query latency (log scale) vs the same three sweeps as Fig 7.

Reuses Fig 7's cached sweeps, extracting the latency column.  Shape: push
sits near half its invalidation interval, far above pull and RPCC, which
share the sub-ten-second regime; weak RPCC is effectively instant.
"""

from repro.experiments.figures.fig7 import (
    CACHE_NUMBERS,
    QUERY_INTERVALS,
    UPDATE_INTERVALS,
)
from repro.experiments.figures.fig8 import fig8a, fig8b, fig8c
from repro.experiments.runner import STRATEGY_SPECS

from benchmarks.conftest import bench_config, cached_axis_sweep, print_figure


def _assert_fig8_shape(figure):
    for x in figure.x_values:
        push = figure.value("push", x)
        pull = figure.value("pull", x)
        sc = figure.value("rpcc-sc", x)
        wc = figure.value("rpcc-wc", x)
        assert push > 3 * pull, f"push latency must dominate pull at x={x}"
        assert push > 3 * sc, f"push latency must dominate RPCC-SC at x={x}"
        assert wc <= sc, f"weak RPCC can never be slower than strong at x={x}"


def test_fig8a(benchmark):
    """Latency vs update interval (Fig 8a)."""
    def run():
        results = cached_axis_sweep("update_interval", UPDATE_INTERVALS)
        return fig8a(bench_config(), STRATEGY_SPECS, UPDATE_INTERVALS, results)

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    _assert_fig8_shape(figure)


def test_fig8b(benchmark):
    """Latency vs query (request) interval (Fig 8b)."""
    def run():
        results = cached_axis_sweep("query_interval", QUERY_INTERVALS)
        return fig8b(bench_config(), STRATEGY_SPECS, QUERY_INTERVALS, results)

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    _assert_fig8_shape(figure)


def test_fig8c(benchmark):
    """Latency vs cache number (Fig 8c)."""
    def run():
        results = cached_axis_sweep("cache_num", tuple(CACHE_NUMBERS))
        return fig8c(bench_config(), STRATEGY_SPECS, CACHE_NUMBERS, results)

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    _assert_fig8_shape(figure)
