"""Campaign benchmarks: the sweep executor, parallel fan-out, warm cache.

The campaign layer is what turns one fast run into a fast *figure*: six
strategy curves x several axis points x (optionally) several seeds.
These benchmarks time one scaled-down Fig-7-style campaign three ways —

* **serial** — the historical loop (``CampaignExecutor(jobs=1)``);
* **jobs=2** — fanned out over a two-worker process pool (the speedup is
  hardware-bound: on a single-CPU box it can only break even);
* **cache-warm** — rerun against a populated content-addressed cache,
  which must do *zero* simulation work.

``run_bench.py --suite sweep`` measures the same three shapes without
pytest, records them in ``BENCH_sweep.json`` and applies the standard
>30% regression gate; the pytest entry points below additionally assert
the correctness side (bit-identical results, zero-work warm reruns).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.executor import CampaignExecutor, ResultCache
from repro.experiments.figures.base import run_axis_sweep

from benchmarks.conftest import bench_config

#: The scaled campaign: 2 strategies x 3 axis points = 6 independent runs.
SWEEP_AXIS = "update_interval"
SWEEP_VALUES: Tuple[float, ...] = (60.0, 120.0, 240.0)
SWEEP_SPECS: Tuple[str, ...] = ("push", "rpcc-sc")


def sweep_config() -> SimulationConfig:
    """A small-but-real campaign point (20 peers, 3+1 simulated minutes)."""
    return bench_config(
        n_peers=20,
        sim_time=180.0,
        warmup=60.0,
        terrain_width=1000.0,
        terrain_height=1000.0,
    )


def run_campaign(executor: CampaignExecutor) -> Dict:
    """One full sweep through the given executor."""
    return run_axis_sweep(
        sweep_config(), SWEEP_AXIS, SWEEP_VALUES, SWEEP_SPECS, executor=executor
    )


def sweep_benchmarks(cache_root: str) -> List[Tuple[str, Callable[[], None]]]:
    """Name -> one-iteration callable for every gated sweep benchmark.

    ``cache_root`` hosts the cache-warm benchmark's store; the measuring
    harness's warm-up call populates it, so the timed iterations are pure
    cache reads.
    """
    warm_cache = ResultCache(os.path.join(cache_root, "sweep-cache"))
    return [
        ("sweep_serial_6runs", lambda: run_campaign(CampaignExecutor())),
        ("sweep_jobs2_6runs", lambda: run_campaign(CampaignExecutor(jobs=2))),
        (
            "sweep_cache_warm_6runs",
            lambda: run_campaign(CampaignExecutor(cache=warm_cache)),
        ),
    ]


# ----------------------------------------------------------------------
# pytest entry points: correctness of the fast paths, plus the speedups
# the hardware can honestly show.


def _summaries(results: Dict) -> Dict:
    return {key: result.summary for key, result in sorted(results.items())}


def test_parallel_campaign_bit_identical(benchmark):
    """jobs=2 must reproduce the serial campaign bit for bit."""
    serial = run_campaign(CampaignExecutor())

    parallel = benchmark.pedantic(
        lambda: run_campaign(CampaignExecutor(jobs=2)), rounds=1, iterations=1
    )
    assert _summaries(parallel) == _summaries(serial)


def test_cache_warm_campaign_does_no_work(benchmark, tmp_path):
    """A warm cache rerun simulates nothing and is far faster than serial."""
    cache = ResultCache(tmp_path / "cache")
    cold_executor = CampaignExecutor(cache=cache)
    started = time.perf_counter()
    cold = run_campaign(cold_executor)
    cold_seconds = time.perf_counter() - started
    assert cold_executor.runs_executed == len(SWEEP_VALUES) * len(SWEEP_SPECS)

    warm_executor = CampaignExecutor(cache=cache)
    started = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: run_campaign(warm_executor), rounds=1, iterations=1
    )
    warm_seconds = time.perf_counter() - started

    assert warm_executor.runs_executed == 0, "warm rerun must not simulate"
    assert _summaries(warm) == _summaries(cold)
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    print(f"\ncache-warm speedup: {speedup:.1f}x "
          f"({cold_seconds * 1e3:.0f} ms cold -> {warm_seconds * 1e3:.0f} ms warm)")
    assert speedup > 1.5


def test_parallel_campaign_speedup(benchmark):
    """jobs=2 beats serial by >1.5x — wherever two cores actually exist."""
    cpus = os.cpu_count() or 1
    started = time.perf_counter()
    run_campaign(CampaignExecutor())
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    benchmark.pedantic(
        lambda: run_campaign(CampaignExecutor(jobs=2)), rounds=1, iterations=1
    )
    parallel_seconds = time.perf_counter() - started
    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print(f"\nparallel speedup at jobs=2: {speedup:.2f}x on {cpus} CPU(s)")
    if cpus >= 2:
        assert speedup > 1.5, (
            f"expected >1.5x from 2 workers on {cpus} CPUs, got {speedup:.2f}x"
        )
