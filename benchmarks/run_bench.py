"""Kernel benchmark entry point with a committed-baseline regression gate.

Runs the same fast-path workloads as ``bench_kernel.py`` (event kernel,
spatial-grid snapshot build, memoised BFS bursts, ``has_edge``) without
needing pytest, writes the measurements to ``BENCH_kernel.json`` and
compares them against the committed baseline next to this file::

    PYTHONPATH=src python benchmarks/run_bench.py            # measure + gate
    PYTHONPATH=src python benchmarks/run_bench.py --update   # rewrite baseline

Exits nonzero when any benchmark is more than ``--threshold`` (default
30%) slower than the committed baseline, so CI catches hot-path
regressions before they show up as hour-long figure runs.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

BENCH_DIR = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))
sys.path.insert(0, str(BENCH_DIR.parent))

from benchmarks.baseline import (  # noqa: E402
    DEFAULT_THRESHOLD,
    compare,
    format_comparison,
    has_regressions,
    load_baseline,
    save_baseline,
)
from repro.mobility.terrain import Terrain  # noqa: E402
from repro.mobility.waypoint import RandomWaypoint  # noqa: E402
from repro.net.topology import TopologySnapshot  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

BASELINE_PATH = BENCH_DIR / "BENCH_kernel.json"


def _scaled_positions(count: int, seed: int = 3):
    """Random placements at the paper's density (50 nodes / 1500 m square)."""
    side = 1500.0 * math.sqrt(count / 50.0)
    rng = random.Random(seed)
    terrain = Terrain(side, side)
    return {i: terrain.random_point(rng) for i in range(count)}


def _bench_event_throughput() -> None:
    sim = Simulator()
    for index in range(10_000):
        sim.schedule(float(index % 97) * 0.1, lambda: None)
    sim.run()


def _make_build_bench(count: int) -> Callable[[], None]:
    positions = _scaled_positions(count)

    def run() -> None:
        TopologySnapshot(positions, 350.0)

    return run


def _make_route_burst(count: int) -> Callable[[], None]:
    positions = _scaled_positions(count)

    def run() -> None:
        snapshot = TopologySnapshot(positions, 350.0)
        for query in range(200):
            snapshot.shortest_path(query % 16, (query * 37) % count)

    return run


def _make_flood_burst(count: int) -> Callable[[], None]:
    positions = _scaled_positions(count)

    def run() -> None:
        snapshot = TopologySnapshot(positions, 350.0)
        for query in range(200):
            snapshot.bfs_levels(query % 16, max_depth=8)

    return run


def _bench_has_edge() -> None:
    snapshot = _HAS_EDGE_SNAPSHOT
    for query in range(10_000):
        snapshot.has_edge(query % 1000, (query * 13 + 7) % 1000)


_HAS_EDGE_SNAPSHOT = None  # built lazily so import stays cheap


def _bench_waypoint_sampling() -> None:
    terrain = Terrain(1500.0, 1500.0)
    model = RandomWaypoint(terrain, random.Random(1), 1.0, 5.0, 60.0)
    for t in range(0, 18_000, 10):
        model.position(float(t))


def kernel_benchmarks() -> List[Tuple[str, Callable[[], None]]]:
    """Name -> one-iteration callable for every gated kernel benchmark."""
    global _HAS_EDGE_SNAPSHOT
    if _HAS_EDGE_SNAPSHOT is None:
        _HAS_EDGE_SNAPSHOT = TopologySnapshot(_scaled_positions(1000), 350.0)
    return [
        ("event_throughput_10k", _bench_event_throughput),
        ("snapshot_build_50", _make_build_bench(50)),
        ("snapshot_build_200", _make_build_bench(200)),
        ("snapshot_build_1000", _make_build_bench(1000)),
        ("route_burst_1000", _make_route_burst(1000)),
        ("flood_burst_1000", _make_flood_burst(1000)),
        ("has_edge_10k", _bench_has_edge),
        ("waypoint_sampling_5h", _bench_waypoint_sampling),
    ]


def measure(fn: Callable[[], None], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    fn()  # warm up (and populate any per-process caches)
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_all(repeats: int = 5, verbose: bool = True) -> Dict[str, float]:
    """Measure every kernel benchmark; returns ``{name: seconds}``."""
    results: Dict[str, float] = {}
    for name, fn in kernel_benchmarks():
        results[name] = measure(fn, repeats)
        if verbose:
            print(f"  {name:<24} {results[name] * 1e3:10.3f} ms")
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH),
        help="committed baseline to gate against (default benchmarks/BENCH_kernel.json)",
    )
    parser.add_argument(
        "--output", default="BENCH_kernel.json",
        help="where to write the fresh measurements (default ./BENCH_kernel.json; "
        "the committed baseline is only rewritten with --update)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="fractional slowdown that fails the gate (default 0.30)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repetitions per benchmark; the best is kept",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from this run instead of gating against it",
    )
    args = parser.parse_args(argv)

    print("running kernel benchmarks:")
    results = run_all(repeats=args.repeats)

    baseline_path = pathlib.Path(args.baseline)
    if args.update or not baseline_path.exists():
        save_baseline(baseline_path, results, meta={"repeats": args.repeats})
        print(f"baseline written to {baseline_path}")
        return 0

    rows = compare(results, load_baseline(baseline_path), args.threshold)
    save_baseline(args.output, results, meta={"repeats": args.repeats})
    print()
    print(format_comparison(rows))
    if has_regressions(rows):
        print(f"\nFAIL: regression beyond {args.threshold:.0%} of baseline", file=sys.stderr)
        return 1
    print("\nOK: within threshold of committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
