"""Benchmark entry point with a committed-baseline regression gate.

Two suites, each gated against its own committed baseline next to this
file:

* ``kernel`` — the fast-path workloads of ``bench_kernel.py`` (event
  kernel, spatial-grid snapshot build, memoised BFS bursts, ``has_edge``),
  gated against ``BENCH_kernel.json``;
* ``engine`` — the timer-wheel event engine of ``bench_engine.py``
  (bulk schedule/run, the pooled ``post`` fast path, timer-renewal
  churn on both the wheel and the pure heap, cancel-sweep pressure),
  gated against ``BENCH_engine.json``; the wheel-over-heap churn
  speedup lands in the baseline metadata, where the committed-target
  test holds it to a floor;
* ``sweep`` — the campaign executor of ``bench_sweep.py`` (serial vs
  two-worker vs cache-warm runs of a scaled Fig-7-style sweep), gated
  against ``BENCH_sweep.json``; the parallel and cache-hit speedups are
  printed and recorded in the result metadata;
* ``trace`` — the observability layer of ``bench_trace.py`` (the same
  run untraced, with a null sink, and with JSONL export), gated against
  ``BENCH_trace.json``;
* ``topology`` — the incremental snapshot pipeline of
  ``bench_topology.py`` (pause-heavy 200/1000-node refresh walks,
  incremental vs from-scratch, plus the churn-heavy worst case), gated
  against ``BENCH_topology.json``; the incremental speedups land in the
  result metadata;
* ``faults`` — the fault-injection layer of ``bench_faults.py`` (the
  same chaos-scale run fault-free and under the shipped partition,
  bursty-loss, and crash-reboot plans), gated against
  ``BENCH_faults.json``;
* ``scale`` — the struct-of-arrays core of ``bench_scale.py`` (1k/5k/10k
  RPCC runs on the scalar and vectorized cores), gated against
  ``BENCH_scale.json``; the per-scale vectorized speedups land in the
  baseline metadata.  These benchmarks are self-timing (they report the
  run phase only, excluding world construction), so they are measured
  via :func:`measure_returned`;
* ``campaign`` — the persistence layers of ``bench_campaign.py`` (a
  synthetic 1000-point campaign written and read back through the
  per-pickle cache and through the columnar result store), gated against
  ``BENCH_campaign.json``; the store-vs-pickle speedup and the
  deterministic filesystem-write reduction land in the metadata, where
  the committed-target tests hold them to >=5x and >=100x;
* ``control`` — the online controller of ``bench_control.py`` (the same
  chaos-scale run with no controller, with the no-op static policy
  sampling every window, and with the hysteresis policy actuating under
  the shipped partition plan), gated against ``BENCH_control.json``;
  the observation and closed-loop overhead ratios land in the metadata,
  where the pytest entry points hold the fault-free sampling cost to 5%.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                 # all suites
    PYTHONPATH=src python benchmarks/run_bench.py --suite sweep   # one suite
    PYTHONPATH=src python benchmarks/run_bench.py --update        # new baselines
    PYTHONPATH=src python benchmarks/run_bench.py --check         # CI gate only

Exits nonzero when any benchmark is more than ``--threshold`` slower
than its committed baseline (default 30%; the kernel suite — whose hot
paths host the trace emit sites — is tightened to 5%), so CI catches
hot-path and campaign-layer regressions before they show up as
hour-long figure runs.  ``--check`` gates without writing any files.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import random
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

BENCH_DIR = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))
sys.path.insert(0, str(BENCH_DIR.parent))

from benchmarks.baseline import (  # noqa: E402
    DEFAULT_THRESHOLD,
    compare,
    format_comparison,
    has_regressions,
    load_baseline,
    save_baseline,
)
from repro.mobility.terrain import Terrain  # noqa: E402
from repro.mobility.waypoint import RandomWaypoint  # noqa: E402
from repro.net.topology import TopologySnapshot  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

SUITES = ("kernel", "engine", "sweep", "trace", "topology", "faults",
          "scale", "campaign", "control")

#: Timing repetitions per suite (the best is kept).  The sweep campaign
#: is seconds-per-iteration, so it repeats less than the ms-scale kernels;
#: the scale suite's 10k-node scalar arm runs tens of seconds, so it
#: repeats least of all (the noise-retry pass still resamples any
#: benchmark that appears to regress).
SUITE_REPEATS = {
    "kernel": 5, "engine": 5, "sweep": 2, "trace": 3, "topology": 3,
    "faults": 3, "scale": 1, "campaign": 3, "control": 3,
}

#: Suites whose benchmark callables time themselves and return seconds
#: (measured via :func:`measure_returned` instead of :func:`measure`).
SELF_TIMED_SUITES = frozenset({"scale"})

#: Per-suite gate overrides.  The kernel suite runs the hot paths the
#: trace emit sites were added to, so it gets a tightened 5% budget —
#: disabled tracing must stay near-free.  Other suites keep the default.
SUITE_THRESHOLDS = {"kernel": 0.05}


def _scaled_positions(count: int, seed: int = 3):
    """Random placements at the paper's density (50 nodes / 1500 m square)."""
    side = 1500.0 * math.sqrt(count / 50.0)
    rng = random.Random(seed)
    terrain = Terrain(side, side)
    return {i: terrain.random_point(rng) for i in range(count)}


def _bench_event_throughput() -> None:
    sim = Simulator()
    for index in range(10_000):
        sim.schedule(float(index % 97) * 0.1, lambda: None)
    sim.run()


def _make_build_bench(count: int) -> Callable[[], None]:
    positions = _scaled_positions(count)

    def run() -> None:
        TopologySnapshot(positions, 350.0)

    return run


def _make_route_burst(count: int) -> Callable[[], None]:
    positions = _scaled_positions(count)

    def run() -> None:
        snapshot = TopologySnapshot(positions, 350.0)
        for query in range(200):
            snapshot.shortest_path(query % 16, (query * 37) % count)

    return run


def _make_flood_burst(count: int) -> Callable[[], None]:
    positions = _scaled_positions(count)

    def run() -> None:
        snapshot = TopologySnapshot(positions, 350.0)
        for query in range(200):
            snapshot.bfs_levels(query % 16, max_depth=8)

    return run


def _bench_has_edge() -> None:
    snapshot = _HAS_EDGE_SNAPSHOT
    for query in range(10_000):
        snapshot.has_edge(query % 1000, (query * 13 + 7) % 1000)


_HAS_EDGE_SNAPSHOT = None  # built lazily so import stays cheap


def _bench_waypoint_sampling() -> None:
    terrain = Terrain(1500.0, 1500.0)
    model = RandomWaypoint(terrain, random.Random(1), 1.0, 5.0, 60.0)
    for t in range(0, 18_000, 10):
        model.position(float(t))


def kernel_benchmarks() -> List[Tuple[str, Callable[[], None]]]:
    """Name -> one-iteration callable for every gated kernel benchmark."""
    global _HAS_EDGE_SNAPSHOT
    if _HAS_EDGE_SNAPSHOT is None:
        _HAS_EDGE_SNAPSHOT = TopologySnapshot(_scaled_positions(1000), 350.0)
    return [
        ("event_throughput_10k", _bench_event_throughput),
        ("snapshot_build_50", _make_build_bench(50)),
        ("snapshot_build_200", _make_build_bench(200)),
        ("snapshot_build_1000", _make_build_bench(1000)),
        ("route_burst_1000", _make_route_burst(1000)),
        ("flood_burst_1000", _make_flood_burst(1000)),
        ("has_edge_10k", _bench_has_edge),
        ("waypoint_sampling_5h", _bench_waypoint_sampling),
    ]


def suite_benchmarks(
    suite: str, workdir: str
) -> List[Tuple[str, Callable[[], None]]]:
    """The gated benchmarks of one suite (``workdir`` holds scratch state)."""
    if suite == "kernel":
        return kernel_benchmarks()
    if suite == "engine":
        from benchmarks.bench_engine import engine_benchmarks

        return engine_benchmarks(workdir)
    if suite == "sweep":
        from benchmarks.bench_sweep import sweep_benchmarks

        return sweep_benchmarks(workdir)
    if suite == "trace":
        from benchmarks.bench_trace import trace_benchmarks

        return trace_benchmarks(workdir)
    if suite == "topology":
        from benchmarks.bench_topology import topology_benchmarks

        return topology_benchmarks(workdir)
    if suite == "faults":
        from benchmarks.bench_faults import faults_benchmarks

        return faults_benchmarks(workdir)
    if suite == "scale":
        from benchmarks.bench_scale import scale_benchmarks

        return scale_benchmarks(workdir)
    if suite == "campaign":
        from benchmarks.bench_campaign import campaign_benchmarks

        return campaign_benchmarks(workdir)
    if suite == "control":
        from benchmarks.bench_control import control_benchmarks

        return control_benchmarks(workdir)
    raise ValueError(f"unknown suite {suite!r}")


def measure(fn: Callable[[], None], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    fn()  # warm up (and populate any per-process caches)
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_returned(fn: Callable[[], float], repeats: int) -> float:
    """Best-of-``repeats`` for a *self-timing* benchmark.

    ``fn`` returns the seconds of its own timed region (e.g. the run
    phase of a simulation, excluding world construction), so the harness
    keeps the smallest returned value instead of timing the call.
    """
    fn()  # warm up (and populate any per-process caches)
    return min(fn() for _ in range(repeats))


def run_all(
    benchmarks: Sequence[Tuple[str, Callable[[], None]]],
    repeats: int = 5,
    verbose: bool = True,
    timer: Callable[[Callable, int], float] = measure,
) -> Dict[str, float]:
    """Measure every benchmark of one suite; returns ``{name: seconds}``."""
    results: Dict[str, float] = {}
    for name, fn in benchmarks:
        results[name] = timer(fn, repeats)
        if verbose:
            print(f"  {name:<24} {results[name] * 1e3:10.3f} ms")
    return results


def sweep_speedups(results: Dict[str, float]) -> Dict[str, float]:
    """Derive the parallel and cache-hit speedups from sweep timings."""
    serial = results.get("sweep_serial_6runs")
    speedups: Dict[str, float] = {}
    if not serial:
        return speedups
    jobs2 = results.get("sweep_jobs2_6runs")
    warm = results.get("sweep_cache_warm_6runs")
    if jobs2:
        speedups["parallel_speedup_jobs2"] = serial / jobs2
    if warm:
        speedups["cache_hit_speedup"] = serial / warm
    return speedups


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite", choices=SUITES + ("all",), default="all",
        help="which benchmark suite to run (default all)",
    )
    parser.add_argument(
        "--baseline-dir", default=str(BENCH_DIR),
        help="directory of the committed BENCH_<suite>.json baselines",
    )
    parser.add_argument(
        "--output-dir", default=".",
        help="where to write fresh BENCH_<suite>.json measurements "
        "(committed baselines are only rewritten with --update)",
    )
    parser.add_argument(
        "--threshold", type=float, default=None,
        help="fractional slowdown that fails the gate (default 0.30, "
        "except the kernel suite's tightened 0.05)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate-only mode for CI: compare against the committed "
        "baselines and write nothing",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="override the per-suite timing repetitions (kernel 5, sweep 2)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baselines from this run instead of gating against them",
    )
    args = parser.parse_args(argv)
    if args.check and args.update:
        parser.error("--check and --update are mutually exclusive")
    suites = SUITES if args.suite == "all" else (args.suite,)

    failed = False
    for suite in suites:
        repeats = args.repeats if args.repeats is not None else SUITE_REPEATS[suite]
        threshold = (
            args.threshold
            if args.threshold is not None
            else SUITE_THRESHOLDS.get(suite, DEFAULT_THRESHOLD)
        )
        print(f"running {suite} benchmarks:")
        baseline_path = pathlib.Path(args.baseline_dir) / f"BENCH_{suite}.json"
        output_path = pathlib.Path(args.output_dir) / f"BENCH_{suite}.json"
        timer = measure_returned if suite in SELF_TIMED_SUITES else measure
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as workdir:
            benchmarks = suite_benchmarks(suite, workdir)
            results = run_all(benchmarks, repeats=repeats, timer=timer)

            if baseline_path.exists() and not args.update:
                # Wall-clock gates on shared boxes see bursty contention:
                # before declaring a regression, re-measure only the
                # benchmarks that breached and keep the best observation.
                # Transient noise clears on retry; real slowdowns persist.
                by_name = dict(benchmarks)
                baseline = load_baseline(baseline_path)
                rows = compare(results, baseline, threshold)
                for _ in range(2):
                    if not has_regressions(rows):
                        break
                    regressed = [r.name for r in rows if r.status == "regressed"]
                    print(f"  retrying {len(regressed)} regressed "
                          "benchmark(s) to rule out machine noise")
                    # Best-of-N converges to the true floor with enough
                    # samples even inside a contention window, so the
                    # retry samples much harder than the first pass.
                    # The scale suite's scalar 10k arm is tens of seconds
                    # per sample: cap its retry sampling where the
                    # ms-scale suites sample much harder.
                    retry_repeats = (
                        max(2 * repeats, 3)
                        if suite in SELF_TIMED_SUITES
                        else max(3 * repeats, 15)
                    )
                    for name in regressed:
                        results[name] = min(
                            results[name],
                            timer(by_name[name], retry_repeats),
                        )
                    rows = compare(results, baseline, threshold)
        meta: Dict[str, object] = {"repeats": repeats}
        if suite == "sweep":
            for name, value in sweep_speedups(results).items():
                meta[name] = round(value, 3)
                print(f"  {name:<24} {value:10.2f}x")
        elif suite == "engine":
            from benchmarks.bench_engine import engine_speedups

            for name, value in engine_speedups(results).items():
                meta[name] = round(value, 3)
                print(f"  {name:<24} {value:10.2f}x")
        elif suite == "topology":
            from benchmarks.bench_topology import topology_speedups

            for name, value in topology_speedups(results).items():
                meta[name] = round(value, 3)
                print(f"  {name:<24} {value:10.2f}x")
        elif suite == "scale":
            from benchmarks.bench_scale import scale_speedups

            for name, value in scale_speedups(results).items():
                meta[name] = round(value, 3)
                print(f"  {name:<24} {value:10.2f}x")
        elif suite == "campaign":
            from benchmarks.bench_campaign import campaign_speedups

            for name, value in campaign_speedups(results).items():
                meta[name] = round(value, 3)
                print(f"  {name:<24} {value:10.2f}x")
        elif suite == "control":
            from benchmarks.bench_control import control_overheads

            for name, value in control_overheads(results).items():
                meta[name] = round(value, 3)
                print(f"  {name:<24} {value:10.2f}x")

        if not args.check and (args.update or not baseline_path.exists()):
            save_baseline(baseline_path, results, meta=meta)
            print(f"baseline written to {baseline_path}\n")
            continue
        if args.check and not baseline_path.exists():
            print(f"FAIL: no committed baseline at {baseline_path}",
                  file=sys.stderr)
            failed = True
            continue

        rows = compare(results, load_baseline(baseline_path), threshold)
        if not args.check:
            save_baseline(output_path, results, meta=meta)
        print()
        print(format_comparison(rows))
        if has_regressions(rows):
            print(f"\nFAIL: {suite} regression beyond {threshold:.0%} "
                  "of baseline", file=sys.stderr)
            failed = True
        else:
            print(f"\nOK: {suite} within threshold of committed baseline")
        print()
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
