"""Benchmark baseline tracking: save, load and diff ``BENCH_*.json`` files.

A baseline file maps benchmark names to best-of-N wall-clock seconds plus
a small metadata block.  :func:`compare` diffs a fresh result set against
a committed baseline so CI (and future PRs) can fail on perf regressions
instead of discovering them in a figure run; ``run_bench.py`` is the
entry point that wires this to the kernel benchmarks.

Usable standalone to diff two result files::

    python benchmarks/baseline.py BENCH_kernel.json /tmp/BENCH_new.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "DEFAULT_THRESHOLD",
    "Comparison",
    "compare",
    "format_comparison",
    "has_regressions",
    "load_baseline",
    "save_baseline",
]

#: A benchmark regresses when it is more than 30% slower than baseline.
DEFAULT_THRESHOLD = 0.30


@dataclass
class Comparison:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    baseline_s: Optional[float]
    current_s: Optional[float]
    status: str  # "ok" | "regressed" | "improved" | "new" | "missing"

    @property
    def ratio(self) -> Optional[float]:
        """current/baseline; ``None`` when either side is absent."""
        if not self.baseline_s or self.current_s is None:
            return None
        return self.current_s / self.baseline_s


def load_baseline(path) -> Dict[str, float]:
    """Read the ``{name: seconds}`` results of a baseline file."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return {name: float(value) for name, value in data["results"].items()}


def save_baseline(path, results: Dict[str, float], meta: Optional[Dict] = None) -> None:
    """Write ``results`` (plus environment metadata) as a baseline file."""
    payload = {
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            **(meta or {}),
        },
        "results": {name: results[name] for name in sorted(results)},
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    pathlib.Path(path).write_text(text, encoding="utf-8")


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Comparison]:
    """Diff ``current`` against ``baseline``, one row per benchmark name.

    Benchmarks slower than ``baseline * (1 + threshold)`` are marked
    ``regressed``; symmetrically faster ones ``improved``.  Names present
    on only one side become ``new`` / ``missing`` rows (never failures, so
    adding a benchmark does not require regenerating the baseline first).
    """
    rows: List[Comparison] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            status = "new"
        elif cur is None:
            status = "missing"
        elif cur > base * (1.0 + threshold):
            status = "regressed"
        elif cur < base / (1.0 + threshold):
            status = "improved"
        else:
            status = "ok"
        rows.append(Comparison(name, base, cur, status))
    return rows


def has_regressions(rows: Sequence[Comparison]) -> bool:
    """``True`` when any row crossed the regression threshold."""
    return any(row.status == "regressed" for row in rows)


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value * 1e3:10.3f} ms"


def format_comparison(rows: Sequence[Comparison]) -> str:
    """Human-readable comparison table."""
    width = max([len(row.name) for row in rows] + [9])
    lines = [f"{'benchmark':<{width}}  {'baseline':>13}  {'current':>13}  {'ratio':>6}  status"]
    for row in rows:
        ratio = f"{row.ratio:.2f}x" if row.ratio is not None else "-"
        lines.append(
            f"{row.name:<{width}}  {_fmt_seconds(row.baseline_s):>13}  "
            f"{_fmt_seconds(row.current_s):>13}  {ratio:>6}  {row.status}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Diff two benchmark result files.")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional slowdown that counts as a regression (default 0.30)",
    )
    args = parser.parse_args(argv)
    rows = compare(load_baseline(args.current), load_baseline(args.baseline), args.threshold)
    print(format_comparison(rows))
    return 1 if has_regressions(rows) else 0


if __name__ == "__main__":
    sys.exit(main())
