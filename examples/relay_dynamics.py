#!/usr/bin/env python3
"""Watching the relay overlay form: time series of one RPCC run.

The relay overlay does not exist at t=0 — candidacy needs a full
coefficient period of history, then an INVALIDATION to apply on.  This
example runs one RPCC(SC) simulation with no warm-up cut-off and plots,
as ASCII time series,

* the relay population ramping from zero to steady state, and
* the per-minute transmission rate falling as the overlay starts
  absorbing polls that previously escalated into wide broadcasts.

This transient is exactly why measured windows start after a warm-up
(DESIGN.md, deviation 6).

Usage::

    python examples/relay_dynamics.py

Set ``REPRO_SMOKE=1`` for a seconds-long sanity run (used by the example
smoke tests) instead of the full example scale.
"""

import os

from repro.experiments import SimulationConfig, build_simulation
from repro.viz.ascii import ascii_chart

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    config = SimulationConfig(sim_time=1800.0, warmup=0.0, seed=8)
    if SMOKE:
        config = config.with_overrides(n_peers=16, sim_time=420.0)
    simulation = build_simulation(config, "rpcc-sc")
    result = simulation.run()

    relay_times = [t for t, _ in result.relay_samples]
    relay_counts = [float(c) for _, c in result.relay_samples]
    print(
        ascii_chart(
            relay_times,
            {"relays": relay_counts},
            width=66,
            height=12,
            title="relay (node,item) pairs over time — the overlay bootstraps",
        )
    )
    print()

    assert result.traffic_series is not None
    buckets = result.traffic_series.bucketed(180.0, "sum")
    print(
        ascii_chart(
            [start for start, _ in buckets],
            {"tx/3min": [value for _, value in buckets]},
            width=66,
            height=12,
            title="transmissions per 3-minute window — floods fade as relays appear",
        )
    )
    print()
    ramp = [c for _, c in result.relay_samples[:5]]
    steady = result.mean_relay_count
    print(f"first five samples of the relay count : {ramp}")
    print(f"steady-state mean                     : {steady:.1f}")
    print()
    print("Reading: nothing relays before the first coefficient period")
    print(f"closes (t={config.switch_interval:.0f}s); promotion then rides the next")
    print("INVALIDATION round, and traffic settles once polls find relays.")


if __name__ == "__main__":
    main()
