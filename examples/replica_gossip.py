#!/usr/bin/env python3
"""Multi-writer replicas over a MANET (the paper's future-work direction 3).

Demonstrates :mod:`repro.extensions.replica`: a shared "operations order"
document replicated across ten field devices, where *any* device may
write.  Conflicting concurrent writes are resolved last-writer-wins and
anti-entropy gossip spreads the winner — even to a device that was out of
range when the order changed.

Usage::

    python examples/replica_gossip.py
"""

import random

from repro.extensions.replica import GossipReplication
from repro.mobility.stationary import Stationary
from repro.mobility.terrain import Terrain
from repro.net.network import Network
from repro.peers.host import MobileHost
from repro.sim.engine import Simulator


def main() -> None:
    sim = Simulator()
    network = Network(sim, radio_range=320.0)
    terrain = Terrain(600.0, 600.0)
    holders = list(range(10))
    for node_id, point in enumerate(terrain.grid_points(2, 5)):
        network.register(MobileHost(node_id, sim, Stationary(point)))

    replication = GossipReplication(
        sim, network, item_id=0, holders=holders,
        rng=random.Random(11), gossip_interval=20.0,
    )
    replication.start()

    print("t=0     device 2 writes order #1; device 7 concurrently writes order #2")
    replication.write(2, 1)
    replication.write(7, 2)

    print("t=10    device 9 goes out of range")
    sim.run_until(10.0)
    network.node(9).set_online(False)

    sim.run_until(200.0)
    print(f"t=200   converged among reachable devices: "
          f"{replication.distinct_values() <= 2}")

    print("t=200   device 4 issues a NEW order #3 (later write wins)")
    replication.write(4, 3)

    sim.run_until(400.0)
    print("t=400   device 9 comes back into range")
    network.node(9).set_online(True)

    sim.run_until(800.0)
    values = {node: replication.read(node)[0] for node in holders}
    print(f"t=800   values everywhere: {values}")
    print(f"        converged: {replication.converged()}  "
          f"(gossip rounds: {replication.rounds})")
    assert replication.converged()
    assert all(value == 3 for value in values.values())
    print()
    print("Reading: ties between concurrent writers resolve by (Lamport,")
    print("writer id); later writes dominate; a reconnecting straggler")
    print("catches up through gossip alone.")


if __name__ == "__main__":
    main()
