#!/usr/bin/env python3
"""Quickstart: one RPCC simulation and a side-by-side strategy comparison.

Runs the paper's Table-1 world at a reduced time scale (10-minute warm-up
plus a 15-minute measured window instead of 5 hours) and prints the
metrics the evaluation section is built on: network traffic, query
latency, and the staleness audit this reproduction adds.

Usage::

    python examples/quickstart.py

Set ``REPRO_SMOKE=1`` for a seconds-long sanity run (used by the example
smoke tests) instead of the full example scale.
"""

import os

from repro.experiments import STRATEGY_SPECS, SimulationConfig, run_simulation
from repro.metrics.report import format_summary, format_table

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    config = SimulationConfig(sim_time=900.0, warmup=600.0, seed=42)
    if SMOKE:
        config = config.with_overrides(n_peers=16, sim_time=60.0, warmup=30.0)

    print("=== one detailed RPCC(SC) run ===")
    result = run_simulation(config, "rpcc-sc")
    print(format_summary(result.summary, title="RPCC strong consistency"))
    print()
    print(f"mean relay population : {result.mean_relay_count:.1f} (node,item) pairs")
    print(f"events processed      : {result.events_processed:,}")
    print(f"wall clock            : {result.wall_clock_seconds:.1f}s")

    print()
    print("=== all six strategy curves (one x point of Fig 7/8) ===")
    rows = []
    for spec in STRATEGY_SPECS:
        outcome = run_simulation(config, spec)
        summary = outcome.summary
        rows.append(
            (
                spec,
                summary.transmissions,
                round(summary.mean_latency, 2),
                f"{summary.queries_answered}/{summary.queries_issued}",
                round(summary.stale_ratio, 3),
                round(summary.violation_ratio, 3),
            )
        )
    print(
        format_table(
            ("strategy", "transmissions", "latency (s)", "answered",
             "stale", "violations"),
            rows,
            title="Table-1 workload, 15 simulated minutes",
        )
    )
    print()
    print("Expected shapes: pull tops the traffic column, push tops the")
    print("latency column, RPCC sits between on traffic and near pull on")
    print("latency — weaker consistency levels trade staleness for both.")


if __name__ == "__main__":
    main()
