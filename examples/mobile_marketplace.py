#!/usr/bin/env python3
"""Mobile marketplace scenario (the paper's second motivating example).

"A mobile store system consists of several mobile booths that store the
information (e.g. price, sum, etc) of the commodities.  People can visit
any mobile booth to select the commodity they want.  The booths having
the data item cache of the same commodity will need to exchange the deal
information with each other."

Modelled here: 30 booths on a market square.  Prices change every couple
of minutes as deals close.  Different queries genuinely need different
guarantees — checkout needs the *current* price (strong), browsing is
happy with a price from the last few minutes (delta), and the window
display only needs *a* price (weak).  That is exactly the mixed workload
RPCC's Section 4.4 adaptivity targets, so this example runs the hybrid
mix and then breaks the results down per consistency level.

Usage::

    python examples/mobile_marketplace.py

Set ``REPRO_SMOKE=1`` for a seconds-long sanity run (used by the example
smoke tests) instead of the full example scale.
"""

import os

from repro.experiments import SimulationConfig, build_simulation
from repro.metrics.report import format_table

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def marketplace_config(seed: int = 13) -> SimulationConfig:
    config = SimulationConfig(
        n_peers=30,
        terrain_width=700.0,          # a market square
        terrain_height=700.0,
        radio_range=250.0,
        cache_num=10,
        update_interval=150.0,        # deals reprice items
        query_interval=12.0,          # busy shoppers
        ttp=180.0,                    # "a few minutes old is fine" = delta
        sim_time=1200.0,
        warmup=600.0,
        stable_fraction=0.5,          # anchored booths vs roaming carts
        speed_min=0.5,
        speed_max=2.0,                # walking pace
        seed=seed,
    )
    if SMOKE:
        config = config.with_overrides(n_peers=12, sim_time=120.0, warmup=60.0)
    return config


def main() -> None:
    config = marketplace_config()
    print("Mobile marketplace: 30 booths, hybrid consistency workload")
    print()
    simulation = build_simulation(config, "rpcc-hy")
    result = simulation.run()
    latency = simulation.metrics.latency
    staleness = simulation.metrics.staleness

    rows = []
    for level, purpose in (
        ("strong", "checkout price"),
        ("delta", "browsing price"),
        ("weak", "window display"),
    ):
        latencies = latency.latencies(level)
        count = len(latencies)
        mean_latency = sum(latencies) / count if count else 0.0
        rows.append(
            (
                level,
                purpose,
                count,
                round(mean_latency, 3),
                round(staleness.stale_ratio(level), 3),
                round(staleness.violation_ratio(level), 3),
                round(staleness.mean_staleness_age(level), 1),
            )
        )
    print(
        format_table(
            ("level", "use case", "answered", "latency (s)", "stale",
             "violated", "age (s)"),
            rows,
            title="per-level outcome of one hybrid run (20 simulated minutes)",
        )
    )
    print()
    print(f"total radio traffic : {result.summary.transmissions:,} transmissions")
    print(f"relay booths        : {result.mean_relay_count:.1f} (booth, item) pairs")
    print()
    print("Reading: weak reads are instant but often stale; delta reads")
    print(f"stay within the {config.ttp:.0f}s freshness contract almost always;")
    print("strong reads pay poll latency for (near-)current prices.")


if __name__ == "__main__":
    main()
