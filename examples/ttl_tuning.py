#!/usr/bin/env python3
"""Internet-gateway scenario: tuning RPCC's invalidation TTL (Fig 9 style).

The paper's third motivating example: mobile users beyond an access
point's radio range still reach the Internet through peers.  Here one
well-known item (the gateway's service directory) is cached by everyone,
and the operator must pick the invalidation TTL: flood far (every holder
can relay: push-like traffic, snappy answers) or flood near (few relays:
pull-like polling storms).

This is the Fig 9 experiment on a small budget — it sweeps the TTL and
prints the trade-off table an operator would use.

Usage::

    python examples/ttl_tuning.py

Set ``REPRO_SMOKE=1`` for a seconds-long sanity run (used by the example
smoke tests) instead of the full example scale.
"""

import os

from repro.experiments import SimulationConfig, run_simulation
from repro.metrics.report import format_table

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def gateway_config(seed: int = 3) -> SimulationConfig:
    config = SimulationConfig(
        n_peers=40,
        sim_time=900.0,
        warmup=600.0,
        update_interval=90.0,   # the directory churns
        query_interval=20.0,
        seed=seed,
    )
    if SMOKE:
        config = config.with_overrides(n_peers=16, sim_time=90.0, warmup=60.0)
    return config


def main() -> None:
    config = gateway_config()
    print("Gateway directory cached by all 40 peers: choosing the TTL")
    print()
    rows = []
    for ttl in (1, 2, 3, 5, 7):
        result = run_simulation(
            config.with_overrides(ttl_rpcc=ttl), "rpcc-sc", "single_source"
        )
        summary = result.summary
        rows.append(
            (
                ttl,
                summary.transmissions,
                round(summary.mean_latency, 2),
                round(result.mean_relay_count, 1),
                round(summary.violation_ratio, 3),
            )
        )
    for spec in ("push", "pull"):
        result = run_simulation(config, spec, "single_source")
        rows.append(
            (
                spec,
                result.summary.transmissions,
                round(result.summary.mean_latency, 2),
                "-",
                round(result.summary.violation_ratio, 3),
            )
        )
    print(
        format_table(
            ("TTL", "transmissions", "latency (s)", "relays", "stale"),
            rows,
            title="Fig 9 trade-off at example scale",
        )
    )
    print()
    print("Reading: TTL=1 starves the relay overlay and polls escalate to")
    print("pull-style broadcasts; by TTL=3 the overlay carries the load;")
    print("beyond that extra invalidation flooding buys little.")


if __name__ == "__main__":
    main()
