#!/usr/bin/env python3
"""Battlefield scenario (the paper's first motivating example).

"In a battlefield, a group of soldiers, each with a micro-data center and
related communication tools, can form a mobile ad hoc network.  The
soldiers update the information (e.g. geographic or enemy information) in
their data centers momentarily, and can share with each other the new
information and commands."

Modelled here: a platoon of 40 radios on a 1 km x 1 km area — a handful
of dug-in command posts (stable, mains-powered: natural relay peers) and
fast-moving squads (unstable, battery-drained).  Enemy-position items are
update-hot; queries demand strong consistency — a stale enemy position is
worse than a slow one — and popularity is Zipf-skewed towards the contact
zone's items.

The run shows RPCC's relay overlay emerging on the command posts and
compares it against simple push (too slow for targeting data) and simple
pull (radio-silence-hostile flood volume).

Usage::

    python examples/battlefield.py

Set ``REPRO_SMOKE=1`` for a seconds-long sanity run (used by the example
smoke tests) instead of the full example scale.
"""

import os

from repro.experiments import SimulationConfig, run_simulation
from repro.metrics.report import format_table

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def battlefield_config(seed: int = 7) -> SimulationConfig:
    config = SimulationConfig(
        n_peers=40,
        terrain_width=1000.0,
        terrain_height=1000.0,
        radio_range=300.0,           # squad radios
        cache_num=8,
        update_interval=60.0,        # enemy positions change fast
        query_interval=15.0,         # constant situational queries
        sim_time=900.0,
        warmup=600.0,
        stable_fraction=0.25,        # few dug-in command posts
        mean_online=480.0,           # squads drop in and out of cover
        mean_offline=45.0,
        speed_min=2.0,
        speed_max=6.0,               # moving squads
        zipf_theta=0.9,              # the contact zone dominates queries
        seed=seed,
    )
    if SMOKE:
        config = config.with_overrides(n_peers=16, sim_time=90.0, warmup=60.0)
    return config


def main() -> None:
    config = battlefield_config()
    print("Battlefield MP2P: 40 radios, 10 command posts, Zipf-hot intel")
    print()
    rows = []
    rpcc_result = None
    for spec, label in (
        ("rpcc-sc", "RPCC (strong: targeting data)"),
        ("push", "simple push"),
        ("pull", "simple pull"),
    ):
        result = run_simulation(config, spec)
        if spec == "rpcc-sc":
            rpcc_result = result
        summary = result.summary
        rows.append(
            (
                label,
                summary.transmissions,
                round(summary.mean_latency, 2),
                round(summary.p95_latency, 1),
                round(summary.violation_ratio, 3),
                f"{summary.queries_answered}/{summary.queries_issued}",
            )
        )
    print(
        format_table(
            ("strategy", "radio tx", "mean lat (s)", "p95 lat (s)",
             "stale intel", "answered"),
            rows,
            title="15 simulated minutes of contact",
        )
    )
    assert rpcc_result is not None
    print()
    print(
        f"RPCC relay overlay: {rpcc_result.mean_relay_count:.1f} (post, item) "
        "relay pairs on average — the command posts carry the load."
    )
    promotions = rpcc_result.summary.counters.get("rpcc_promotions", 0)
    demotions = rpcc_result.summary.counters.get("rpcc_demotions", 0)
    print(f"promotions/demotions during the window: {promotions}/{demotions}")
    print()
    print("Reading: push's ~minute-long waits are useless for targeting;")
    print("pull's flood-per-query lights up the spectrum.  RPCC keeps")
    print("latency in pull territory at a fraction of the radio traffic.")


if __name__ == "__main__":
    main()
